#include "symcan/supplychain/risk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix committed_matrix() {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  // Suppliers committed tight jitters: 10 % of period across the board.
  assume_jitter_fraction(km, 0.10, true);
  return km;
}

std::vector<SupplierRisk> three_suppliers(const KMatrix& km, double p = 0.2, double factor = 3.0) {
  std::vector<SupplierRisk> risks;
  std::size_t added = 0;
  for (const auto& n : km.nodes()) {
    if (added >= 3) break;
    risks.push_back({n.name, p, factor});
    ++added;
  }
  return risks;
}

RiskConfig risk_config() {
  RiskConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.penalty_per_miss = 10.0;
  return cfg;
}

TEST(SupplierRisk, ExhaustiveForFewSuppliers) {
  const KMatrix km = committed_matrix();
  const RiskReport r = assess_supplier_risk(km, three_suppliers(km), risk_config());
  EXPECT_TRUE(r.exhaustive);
  EXPECT_EQ(r.scenarios_evaluated, 8u);  // 2^3
  EXPECT_EQ(r.suppliers.size(), 3u);
  EXPECT_EQ(r.criticality.size(), 3u);
}

TEST(SupplierRisk, ZeroOverrunProbabilityMeansBaselineRisk) {
  const KMatrix km = committed_matrix();
  const RiskReport r = assess_supplier_risk(km, three_suppliers(km, 0.0), risk_config());
  // All probability mass on the no-overrun scenario.
  const BusResult base = CanRta{km, worst_case_assumptions()}.analyze();
  EXPECT_NEAR(r.expected_penalty, 10.0 * static_cast<double>(base.miss_count()), 1e-9);
}

TEST(SupplierRisk, CertainOverrunMeansWorstScenario) {
  const KMatrix km = committed_matrix();
  const RiskReport r = assess_supplier_risk(km, three_suppliers(km, 1.0), risk_config());
  // Only the all-overrun scenario has mass.
  EXPECT_NEAR(r.expected_penalty, r.worst.penalty, 1e-9);
  for (const bool o : r.worst.overruns) EXPECT_TRUE(o);
}

TEST(SupplierRisk, ExpectedPenaltyGrowsWithOverrunProbability) {
  const KMatrix km = committed_matrix();
  const RiskConfig cfg = risk_config();
  const double p_low = assess_supplier_risk(km, three_suppliers(km, 0.1), cfg).expected_penalty;
  const double p_high = assess_supplier_risk(km, three_suppliers(km, 0.6), cfg).expected_penalty;
  EXPECT_LE(p_low, p_high);
}

TEST(SupplierRisk, WorstScenarioDominatesExpected) {
  const KMatrix km = committed_matrix();
  const RiskReport r = assess_supplier_risk(km, three_suppliers(km, 0.3), risk_config());
  EXPECT_GE(r.worst.penalty, r.expected_penalty - 1e-9);
}

TEST(SupplierRisk, CriticalityIsNonNegativeUnderMonotonicity) {
  // Overrunning only increases jitters, which only increases misses, so
  // conditioning on an overrun can never reduce expected penalty.
  const KMatrix km = committed_matrix();
  const RiskReport r = assess_supplier_risk(km, three_suppliers(km, 0.25), risk_config());
  for (const double c : r.criticality) EXPECT_GE(c, -1e-9);
}

TEST(SupplierRisk, SamplingPathIsDeterministic) {
  const KMatrix km = committed_matrix();
  // Force sampling by shrinking the enumeration budget.
  RiskConfig cfg = risk_config();
  cfg.max_enumeration = 2;
  cfg.samples = 64;
  const RiskReport a = assess_supplier_risk(km, three_suppliers(km, 0.3), cfg);
  const RiskReport b = assess_supplier_risk(km, three_suppliers(km, 0.3), cfg);
  EXPECT_FALSE(a.exhaustive);
  EXPECT_EQ(a.scenarios_evaluated, 64u);
  EXPECT_EQ(a.expected_penalty, b.expected_penalty);
}

TEST(SupplierRisk, SamplingApproximatesEnumeration) {
  const KMatrix km = committed_matrix();
  const auto risks = three_suppliers(km, 0.3);
  RiskConfig exact_cfg = risk_config();
  const RiskReport exact = assess_supplier_risk(km, risks, exact_cfg);
  RiskConfig approx_cfg = risk_config();
  approx_cfg.max_enumeration = 2;
  approx_cfg.samples = 3000;
  const RiskReport approx = assess_supplier_risk(km, risks, approx_cfg);
  if (exact.expected_penalty > 0) {
    EXPECT_NEAR(approx.expected_penalty / exact.expected_penalty, 1.0, 0.35);
  } else {
    EXPECT_NEAR(approx.expected_penalty, 0.0, 1e-9);
  }
}

TEST(SupplierRisk, RejectsBadInputs) {
  const KMatrix km = committed_matrix();
  const RiskConfig cfg = risk_config();
  EXPECT_THROW(assess_supplier_risk(km, {}, cfg), std::invalid_argument);
  EXPECT_THROW(assess_supplier_risk(km, {{"NOPE", 0.1, 2.0}}, cfg), std::invalid_argument);
  EXPECT_THROW(assess_supplier_risk(km, {{km.nodes()[0].name, 1.5, 2.0}}, cfg),
               std::invalid_argument);
  EXPECT_THROW(assess_supplier_risk(km, {{km.nodes()[0].name, 0.1, 0.5}}, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace symcan

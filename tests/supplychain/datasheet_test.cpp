#include "symcan/supplychain/datasheet.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix small_matrix() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 16;
  cfg.ecu_count = 4;
  cfg.target_utilization = 0.5;
  return generate_powertrain(cfg);
}

TEST(MaxOwnJitter, IsBoundaryOfSystemSchedulability) {
  const KMatrix km = small_matrix();
  const CanRtaConfig rta = best_case_assumptions();
  const std::string msg = km.messages()[0].name;
  const Duration j = max_own_jitter(km, rta, msg, Duration::us(20));
  // Feasible at j, infeasible just above (unless capped at the period).
  auto feasible_at = [&](Duration jit) {
    KMatrix v = km;
    for (auto& m : v.messages())
      if (m.name == msg) m.jitter = jit;
    return CanRta{v, rta}.analyze().all_schedulable();
  };
  EXPECT_TRUE(feasible_at(j));
  if (j < km.messages()[0].period) EXPECT_FALSE(feasible_at(j + Duration::us(100)));
}

TEST(MaxOwnJitter, UnknownMessageThrows) {
  EXPECT_THROW(max_own_jitter(small_matrix(), best_case_assumptions(), "nope"),
               std::invalid_argument);
}

TEST(DeriveSendJitterRequirements, CoversRequestedEcuOnly) {
  const KMatrix km = small_matrix();
  const std::string ecu = km.messages()[0].sender;
  const auto reqs = derive_send_jitter_requirements(km, best_case_assumptions(), ecu);
  ASSERT_FALSE(reqs.empty());
  std::size_t expected = 0;
  for (const auto& m : km.messages())
    if (m.sender == ecu) ++expected;
  EXPECT_EQ(reqs.size(), expected);
}

TEST(DeriveSendJitterRequirements, MarginShrinksBounds) {
  const KMatrix km = small_matrix();
  const auto strict = derive_send_jitter_requirements(km, best_case_assumptions(), "", 0.5);
  const auto loose = derive_send_jitter_requirements(km, best_case_assumptions(), "", 1.0);
  ASSERT_EQ(strict.size(), loose.size());
  for (std::size_t i = 0; i < strict.size(); ++i)
    EXPECT_LE(strict[i].max_jitter, loose[i].max_jitter);
}

TEST(DeriveSendJitterRequirements, RejectsBadMargin) {
  EXPECT_THROW(derive_send_jitter_requirements(small_matrix(), best_case_assumptions(), "", 0.0),
               std::invalid_argument);
  EXPECT_THROW(derive_send_jitter_requirements(small_matrix(), best_case_assumptions(), "", 1.5),
               std::invalid_argument);
}

TEST(DeriveArrivalGuarantees, OneEntryPerMessageReceiverPair) {
  const KMatrix km = small_matrix();
  const auto gs = derive_arrival_guarantees(km, best_case_assumptions());
  std::size_t expected = 0;
  for (const auto& m : km.messages()) expected += m.receivers.size();
  EXPECT_EQ(gs.size(), expected);
  for (const auto& g : gs) {
    EXPECT_FALSE(g.max_latency.is_infinite());
    EXPECT_GE(g.max_latency, Duration::zero());
  }
}

TEST(CheckDuality, PassesWhenGuaranteesMeetRequirements) {
  const KMatrix km = small_matrix();
  const CanRtaConfig rta = best_case_assumptions();
  const auto reqs = derive_send_jitter_requirements(km, rta, "", 0.8);
  // Suppliers guarantee exactly what the OEM asked for.
  std::vector<EcuDatasheet> sheets;
  for (const auto& node : km.nodes()) {
    EcuDatasheet ds;
    ds.ecu = node.name;
    for (const auto& req : reqs) {
      const CanMessage* m = km.find_message(req.message);
      if (m->sender == node.name) ds.send_guarantees.push_back({req.message, req.max_jitter});
    }
    sheets.push_back(std::move(ds));
  }
  const DualityReport rep = check_duality(km, rta, reqs, sheets);
  EXPECT_TRUE(rep.ok()) << rep.violations.size() << " violations";
}

TEST(CheckDuality, FlagsExceededGuarantee) {
  const KMatrix km = small_matrix();
  const CanRtaConfig rta = best_case_assumptions();
  const CanMessage& m = km.messages()[0];
  std::vector<SendJitterRequirement> reqs = {{m.name, Duration::us(100)}};
  std::vector<EcuDatasheet> sheets(1);
  sheets[0].ecu = m.sender;
  sheets[0].send_guarantees.push_back({m.name, Duration::us(500)});
  const DualityReport rep = check_duality(km, rta, reqs, sheets);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, DualityViolation::Kind::kSendJitterExceeded);
  EXPECT_EQ(rep.violations[0].message, m.name);
}

TEST(CheckDuality, FlagsMissingGuarantee) {
  const KMatrix km = small_matrix();
  std::vector<SendJitterRequirement> reqs = {{km.messages()[0].name, Duration::us(100)}};
  const DualityReport rep = check_duality(km, best_case_assumptions(), reqs, {});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].kind, DualityViolation::Kind::kMissingGuarantee);
}

TEST(CheckDuality, FlagsUnmeetableArrivalRequirement) {
  const KMatrix km = small_matrix();
  const CanMessage& m = km.messages()[0];
  ASSERT_FALSE(m.receivers.empty());
  std::vector<EcuDatasheet> sheets(1);
  sheets[0].ecu = m.receivers[0];
  // Demand an absurd latency: one bit time.
  sheets[0].arrival_requirements.push_back(
      {m.name, m.receivers[0], Duration::us(2), Duration::infinite()});
  const DualityReport rep = check_duality(km, best_case_assumptions(), {}, sheets);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.violations[0].kind, DualityViolation::Kind::kLatencyNotMet);
}

TEST(CheckDuality, ArrivalJitterViolationDetected) {
  const KMatrix km = small_matrix();
  const CanMessage& m = km.messages()[0];
  ASSERT_FALSE(m.receivers.empty());
  std::vector<EcuDatasheet> sheets(1);
  sheets[0].ecu = m.receivers[0];
  sheets[0].arrival_requirements.push_back(
      {m.name, m.receivers[0], Duration::infinite(), Duration::ns(1)});
  const DualityReport rep = check_duality(km, best_case_assumptions(), {}, sheets);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.violations[0].kind, DualityViolation::Kind::kArrivalJitterNotMet);
}

TEST(CheckDuality, GuaranteesSubstitutedBeforeArrivalCheck) {
  // A committed (small) send jitter must be used for the arrival
  // analysis: a large matrix assumption would otherwise fail the check.
  KMatrix km = small_matrix();
  const std::string victim = km.messages()[0].name;
  for (auto& m : km.messages())
    if (m.name == victim) m.jitter = m.period;  // huge assumption

  const CanRtaConfig rta = best_case_assumptions();
  // The receiver needs the latency achievable with *zero* send jitter.
  KMatrix refined = km;
  for (auto& m : refined.messages())
    if (m.name == victim) m.jitter = Duration::zero();
  const auto achievable = derive_arrival_guarantees(refined, rta);
  Duration lat = Duration::infinite();
  std::string receiver;
  for (const auto& g : achievable)
    if (g.message == victim) {
      lat = g.max_latency;
      receiver = g.receiver;
    }

  std::vector<EcuDatasheet> sheets(2);
  sheets[0].ecu = km.find_message(victim)->sender;
  sheets[0].send_guarantees.push_back({victim, Duration::zero()});
  sheets[1].ecu = receiver;
  sheets[1].arrival_requirements.push_back({victim, receiver, lat, Duration::infinite()});
  const DualityReport rep = check_duality(km, rta, {}, sheets);
  EXPECT_TRUE(rep.ok());
}

EcuDatasheet sample_sheet() {
  EcuDatasheet ds;
  ds.ecu = "ENG";
  ds.send_guarantees.push_back({"rpm", Duration::us(150)});
  ds.send_guarantees.push_back({"torque", Duration::zero()});
  ds.arrival_requirements.push_back({"brake", "ENG", Duration::ms(5), Duration::ms(1)});
  ds.arrival_requirements.push_back(
      {"diag", "ENG", Duration::infinite(), Duration::infinite()});
  return ds;
}

TEST(DatasheetCsv, RoundTripsBitIdentically) {
  const EcuDatasheet ds = sample_sheet();
  const std::string csv = datasheet_to_csv(ds);
  Diagnostics diags;
  const auto back = datasheet_from_csv(csv, diags);
  ASSERT_TRUE(back.has_value()) << diags.format();
  EXPECT_EQ(back->ecu, ds.ecu);
  ASSERT_EQ(back->send_guarantees.size(), 2u);
  EXPECT_EQ(back->send_guarantees[0].message, "rpm");
  EXPECT_EQ(back->send_guarantees[0].jitter, Duration::us(150));
  ASSERT_EQ(back->arrival_requirements.size(), 2u);
  EXPECT_EQ(back->arrival_requirements[0].max_latency, Duration::ms(5));
  EXPECT_TRUE(back->arrival_requirements[1].max_latency.is_infinite());
  EXPECT_EQ(datasheet_to_csv(*back), csv);
}

TEST(DatasheetCsv, MissingEcuRecordIsAnError) {
  Diagnostics diags;
  EXPECT_FALSE(datasheet_from_csv("send,rpm,1000\n", diags).has_value());
  EXPECT_FALSE(diags.ok());
}

TEST(DatasheetCsv, MalformedRecordsAreLineNumbered) {
  const std::string csv =
      "ecu,ENG\n"
      "send,rpm,-5\n"
      "need,brake,ENG,zz,inf\n"
      "wat,x\n";
  Diagnostics diags;
  EXPECT_FALSE(datasheet_from_csv(csv, diags).has_value());
  EXPECT_GE(diags.error_count(), 3u) << diags.format();
  EXPECT_EQ(diags.entries()[0].line, 2u);
  EXPECT_EQ(diags.entries()[1].line, 3u);
  EXPECT_EQ(diags.entries()[2].line, 4u);
}

TEST(DatasheetCsv, ZeroLatencyWarnsLenientFailsStrict) {
  const std::string csv = "ecu,ENG\nneed,brake,ENG,0,inf\n";
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  EXPECT_TRUE(datasheet_from_csv(csv, lenient).has_value());
  EXPECT_EQ(lenient.warning_count(), 1u) << lenient.format();
  Diagnostics strict{DiagnosticPolicy::kStrict};
  EXPECT_FALSE(datasheet_from_csv(csv, strict).has_value());
}

TEST(DatasheetCsv, ThrowingWrapperRaisesParseError) {
  EXPECT_THROW(datasheet_from_csv("send,rpm,1000\n"), ParseError);
  EXPECT_NO_THROW(datasheet_from_csv(datasheet_to_csv(sample_sheet())));
}

TEST(DatasheetCsv, OverflowJitterIsDiagnosedNotWrapped) {
  Diagnostics diags;
  EXPECT_FALSE(
      datasheet_from_csv("ecu,ENG\nsend,rpm,99999999999999999999\n", diags).has_value());
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_EQ(diags.entries()[0].line, 2u);
}

}  // namespace
}  // namespace symcan

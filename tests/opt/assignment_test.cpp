#include "symcan/opt/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix case_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

TEST(ApplyPriorityOrder, RewritesIdsInRankOrder) {
  const KMatrix km = case_matrix();
  PriorityOrder order(km.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const KMatrix out = apply_priority_order(km, order);
  for (std::size_t rank = 1; rank < order.size(); ++rank)
    EXPECT_GT(out.messages()[order[rank]].id, out.messages()[order[rank - 1]].id);
  // Everything else preserved.
  for (std::size_t i = 0; i < km.size(); ++i) {
    EXPECT_EQ(out.messages()[i].name, km.messages()[i].name);
    EXPECT_EQ(out.messages()[i].period, km.messages()[i].period);
    EXPECT_EQ(out.messages()[i].sender, km.messages()[i].sender);
  }
}

TEST(ApplyPriorityOrder, RejectsNonPermutation) {
  const KMatrix km = case_matrix();
  PriorityOrder bad(km.size(), 0);  // all zeros
  EXPECT_THROW(apply_priority_order(km, bad), std::invalid_argument);
  PriorityOrder short_order(km.size() - 1);
  EXPECT_THROW(apply_priority_order(km, short_order), std::invalid_argument);
}

TEST(CurrentOrder, MatchesPriorityOrder) {
  const KMatrix km = case_matrix();
  EXPECT_EQ(current_order(km), km.priority_order());
}

TEST(DeadlineMonotonic, SortsByEffectiveDeadline) {
  const KMatrix km = case_matrix();
  const PriorityOrder order = deadline_monotonic_order(km);
  ASSERT_EQ(order.size(), km.size());
  for (std::size_t r = 1; r < order.size(); ++r)
    EXPECT_LE(km.messages()[order[r - 1]].deadline(), km.messages()[order[r]].deadline());
}

TEST(DeadlineMonotonic, IsAPermutation) {
  const KMatrix km = case_matrix();
  PriorityOrder order = deadline_monotonic_order(km);
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(Audsley, FindsFeasibleAssignmentOnCaseStudyAt25) {
  // The paper's optimizer finds a zero-loss configuration at 25 % jitter
  // under worst-case assumptions; Audsley (optimal for this analysis
  // class) must therefore find one too.
  const KMatrix km = case_matrix();
  const auto order = audsley_order(km, worst_case_assumptions(), 0.25);
  ASSERT_TRUE(order.has_value());

  KMatrix opt = apply_priority_order(km, *order);
  assume_jitter_fraction(opt, 0.25, true);
  const BusResult res = CanRta{opt, worst_case_assumptions()}.analyze();
  EXPECT_TRUE(res.all_schedulable());
}

TEST(Audsley, ResultIsPermutation) {
  const auto order = audsley_order(case_matrix(), worst_case_assumptions(), 0.25);
  ASSERT_TRUE(order.has_value());
  PriorityOrder sorted = *order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Audsley, ReturnsNulloptWhenOverloaded) {
  KMatrix km = case_matrix();
  scale_periods(km, 0.25);  // utilization far above 1
  CanRtaConfig rta = worst_case_assumptions();
  rta.horizon = Duration::ms(500);
  EXPECT_FALSE(audsley_order(km, rta, 0.25).has_value());
}

TEST(Audsley, DominatesDeadlineMonotonicFeasibility) {
  // Whenever DM yields a fully schedulable system, Audsley must too
  // (OPA optimality). Checked at several jitter levels.
  const KMatrix km = case_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  for (const double f : {0.0, 0.10, 0.25}) {
    KMatrix dm = apply_priority_order(km, deadline_monotonic_order(km));
    assume_jitter_fraction(dm, f, true);
    const bool dm_ok = CanRta{dm, rta}.analyze().all_schedulable();
    const bool aud_ok = audsley_order(km, rta, f).has_value();
    if (dm_ok) EXPECT_TRUE(aud_ok) << "jitter " << f;
  }
}

TEST(RobustAssignment, FeasibleAndPermutation) {
  const KMatrix km = case_matrix();
  const auto order = robust_priority_order(km, worst_case_assumptions(), 0.0);
  ASSERT_TRUE(order.has_value());
  PriorityOrder sorted = *order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Feasible at the base assumption.
  KMatrix opt = apply_priority_order(km, *order);
  assume_jitter_fraction(opt, 0.0, true);
  EXPECT_TRUE((CanRta{opt, worst_case_assumptions()}.analyze().all_schedulable()));
}

TEST(RobustAssignment, ToleratesAtLeastAsMuchJitterAsAudsley) {
  // RPA maximizes the tolerated jitter at every level; measured as the
  // largest uniform jitter fraction under which the whole matrix stays
  // schedulable, it must not be worse than plain Audsley's assignment.
  const KMatrix km = case_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  const auto rpa = robust_priority_order(km, rta, 0.0);
  const auto aud = audsley_order(km, rta, 0.0);
  ASSERT_TRUE(rpa.has_value());
  ASSERT_TRUE(aud.has_value());

  auto system_tolerance = [&](const PriorityOrder& order) {
    const KMatrix assigned = apply_priority_order(km, order);
    double lo = 0.0, hi = 1.0;
    auto ok = [&](double f) {
      KMatrix v = assigned;
      assume_jitter_fraction(v, f, true);
      return CanRta{v, rta}.analyze().all_schedulable();
    };
    if (!ok(lo)) return -1.0;
    if (ok(hi)) return hi;
    while (hi - lo > 0.01) {
      const double mid = (lo + hi) / 2;
      (ok(mid) ? lo : hi) = mid;
    }
    return lo;
  };
  EXPECT_GE(system_tolerance(*rpa) + 0.02, system_tolerance(*aud));
}

TEST(RobustAssignment, InfeasibleBaseReturnsNullopt) {
  KMatrix km = case_matrix();
  scale_periods(km, 0.25);
  CanRtaConfig rta = worst_case_assumptions();
  rta.horizon = Duration::ms(500);
  EXPECT_FALSE(robust_priority_order(km, rta, 0.0).has_value());
}

}  // namespace
}  // namespace symcan

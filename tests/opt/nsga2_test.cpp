#include "symcan/opt/nsga2.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix small_matrix() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 20;
  cfg.ecu_count = 4;
  return generate_powertrain(cfg);
}

GaConfig quick_config() {
  GaConfig cfg;
  cfg.population = 16;
  cfg.generations = 8;
  cfg.rta = worst_case_assumptions();
  cfg.eval_fractions = {0.25};
  return cfg;
}

TEST(Nsga2, DeterministicForSameSeed) {
  const KMatrix km = small_matrix();
  const GaResult a = optimize_priorities_nsga2(km, quick_config());
  const GaResult b = optimize_priorities_nsga2(km, quick_config());
  EXPECT_EQ(a.best.order, b.best.order);
  EXPECT_EQ(a.best.misses, b.best.misses);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Nsga2, NeverWorseThanSeeds) {
  const KMatrix km = small_matrix();
  GaConfig cfg = quick_config();
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  const GaResult res = optimize_priorities_nsga2(km, cfg);
  for (const auto& seed : cfg.seeds)
    EXPECT_LE(res.best.misses, evaluate_order(km, seed, cfg).misses);
}

TEST(Nsga2, ReachesZeroLossAt25OnTheCaseStudy) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  GaConfig cfg = quick_config();
  cfg.population = 32;
  cfg.generations = 25;
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  const GaResult res = optimize_priorities_nsga2(km, cfg);
  EXPECT_EQ(res.best.misses, 0);
  KMatrix opt = apply_priority_order(km, res.best.order);
  assume_jitter_fraction(opt, 0.25, true);
  EXPECT_TRUE((CanRta{opt, worst_case_assumptions()}.analyze().all_schedulable()));
}

TEST(Nsga2, ChampionHistoryMonotone) {
  const GaResult res = optimize_priorities_nsga2(small_matrix(), quick_config());
  for (std::size_t i = 1; i < res.best_misses_history.size(); ++i)
    EXPECT_LE(res.best_misses_history[i], res.best_misses_history[i - 1]);
}

TEST(Nsga2, ParetoFrontNondominatedAndSorted) {
  const GaResult res = optimize_priorities_nsga2(small_matrix(), quick_config());
  ASSERT_FALSE(res.pareto.empty());
  for (const auto& a : res.pareto)
    for (const auto& b : res.pareto) {
      const bool dom = (a.misses <= b.misses && a.robustness_cost <= b.robustness_cost) &&
                       (a.misses < b.misses || a.robustness_cost < b.robustness_cost);
      EXPECT_FALSE(dom);
    }
  EXPECT_EQ(res.best.misses, res.pareto.front().misses);
}

TEST(Nsga2, ResultIsPermutation) {
  const GaResult res = optimize_priorities_nsga2(small_matrix(), quick_config());
  PriorityOrder sorted = res.best.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Nsga2, RejectsBadConfig) {
  GaConfig cfg = quick_config();
  cfg.population = 2;
  EXPECT_THROW(optimize_priorities_nsga2(small_matrix(), cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.eval_fractions.clear();
  EXPECT_THROW(optimize_priorities_nsga2(small_matrix(), cfg), std::invalid_argument);
}

TEST(Nsga2, ComparableToSpea2OnTheSameBudget) {
  // Same evaluation budget: neither optimizer should be categorically
  // worse on the primary objective (both reach the target in practice;
  // assert within one miss of each other to stay robust).
  const KMatrix km = small_matrix();
  GaConfig cfg = quick_config();
  cfg.population = 24;
  cfg.generations = 12;
  cfg.archive = 12;
  cfg.seeds = {current_order(km)};
  const GaResult spea2 = optimize_priorities(km, cfg);
  const GaResult nsga2 = optimize_priorities_nsga2(km, cfg);
  EXPECT_NEAR(spea2.best.misses, nsga2.best.misses, 1.0);
}

}  // namespace
}  // namespace symcan

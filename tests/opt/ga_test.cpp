#include "symcan/opt/ga.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix small_matrix() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 20;
  cfg.ecu_count = 4;
  return generate_powertrain(cfg);
}

GaConfig quick_config() {
  GaConfig cfg;
  cfg.population = 16;
  cfg.archive = 8;
  cfg.generations = 8;
  cfg.rta = worst_case_assumptions();
  cfg.eval_fractions = {0.25};
  return cfg;
}

TEST(EvaluateOrder, CountsMissesAndCost) {
  const KMatrix km = small_matrix();
  const GaIndividual ind = evaluate_order(km, current_order(km), quick_config());
  EXPECT_GE(ind.misses, 0);
  EXPECT_GT(ind.robustness_cost, 0);
  EXPECT_LE(ind.robustness_cost, quick_config().ratio_cap);
}

TEST(EvaluateOrder, MoreEvalPointsAccumulateMisses) {
  const KMatrix km = small_matrix();
  GaConfig one = quick_config();
  one.eval_fractions = {0.5};
  GaConfig two = quick_config();
  two.eval_fractions = {0.5, 0.6};
  const double m1 = evaluate_order(km, current_order(km), one).misses;
  const double m2 = evaluate_order(km, current_order(km), two).misses;
  EXPECT_GE(m2, m1);
}

TEST(Ga, DeterministicForSameSeed) {
  const KMatrix km = small_matrix();
  const GaResult a = optimize_priorities(km, quick_config());
  const GaResult b = optimize_priorities(km, quick_config());
  EXPECT_EQ(a.best.order, b.best.order);
  EXPECT_EQ(a.best.misses, b.best.misses);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Ga, NeverWorseThanSeeds) {
  const KMatrix km = small_matrix();
  GaConfig cfg = quick_config();
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  const GaResult res = optimize_priorities(km, cfg);
  for (const auto& seed : cfg.seeds) {
    const GaIndividual si = evaluate_order(km, seed, cfg);
    EXPECT_LE(res.best.misses, si.misses);
  }
}

TEST(Ga, ImprovesTheCaseStudyToZeroLossAt25) {
  // The headline claim of Section 4.3.
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  GaConfig cfg = quick_config();
  cfg.population = 32;
  cfg.archive = 16;
  cfg.generations = 25;
  cfg.seeds = {current_order(km), deadline_monotonic_order(km)};
  const GaResult res = optimize_priorities(km, cfg);
  EXPECT_EQ(res.best.misses, 0);

  KMatrix opt = apply_priority_order(km, res.best.order);
  assume_jitter_fraction(opt, 0.25, true);
  EXPECT_TRUE((CanRta{opt, worst_case_assumptions()}.analyze().all_schedulable()));
}

TEST(Ga, HistoryIsMonotoneNonIncreasing) {
  // The archive keeps the best candidates, so the best archived miss
  // count can only improve over generations.
  const GaResult res = optimize_priorities(small_matrix(), quick_config());
  ASSERT_FALSE(res.best_misses_history.empty());
  for (std::size_t i = 1; i < res.best_misses_history.size(); ++i)
    EXPECT_LE(res.best_misses_history[i], res.best_misses_history[i - 1]);
}

TEST(Ga, ParetoFrontIsNondominated) {
  const GaResult res = optimize_priorities(small_matrix(), quick_config());
  ASSERT_FALSE(res.pareto.empty());
  for (const auto& a : res.pareto)
    for (const auto& b : res.pareto) {
      const bool dominates = (a.misses <= b.misses && a.robustness_cost <= b.robustness_cost) &&
                             (a.misses < b.misses || a.robustness_cost < b.robustness_cost);
      EXPECT_FALSE(dominates) << "front contains dominated point";
    }
}

TEST(Ga, BestIsOnParetoFront) {
  const GaResult res = optimize_priorities(small_matrix(), quick_config());
  bool found = false;
  for (const auto& p : res.pareto)
    found = found || (p.misses == res.best.misses && p.robustness_cost == res.best.robustness_cost);
  EXPECT_TRUE(found);
}

TEST(Ga, ResultIsPermutation) {
  const GaResult res = optimize_priorities(small_matrix(), quick_config());
  PriorityOrder sorted = res.best.order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Ga, RejectsBadConfig) {
  GaConfig cfg = quick_config();
  cfg.population = 2;
  EXPECT_THROW(optimize_priorities(small_matrix(), cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.archive = 1;
  EXPECT_THROW(optimize_priorities(small_matrix(), cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.eval_fractions.clear();
  EXPECT_THROW(optimize_priorities(small_matrix(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace symcan

#include "symcan/analysis/ecu_rta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

Task mk(const char* name, int prio, Duration wcet, Duration period,
        SchedClass sched = SchedClass::kPreemptiveTask) {
  Task t;
  t.name = name;
  t.priority = prio;
  t.wcet = wcet;
  t.bcet = wcet / 2;
  t.sched = sched;
  t.activation = EventModel::periodic(period);
  t.deadline = period;
  return t;
}

TEST(EcuRta, ClassicPreemptiveExample) {
  // The textbook response-time example: C=(1,2,3) ms, T=(4,6,12) ms.
  const EcuRta rta{{mk("t1", 1, Duration::ms(1), Duration::ms(4)),
                    mk("t2", 2, Duration::ms(2), Duration::ms(6)),
                    mk("t3", 3, Duration::ms(3), Duration::ms(12))}};
  const EcuResult res = rta.analyze();
  ASSERT_EQ(res.tasks.size(), 3u);
  EXPECT_EQ(res.tasks[0].wcrt, Duration::ms(1));
  EXPECT_EQ(res.tasks[1].wcrt, Duration::ms(3));
  EXPECT_EQ(res.tasks[2].wcrt, Duration::ms(10));
  EXPECT_TRUE(res.all_schedulable());
  EXPECT_NEAR(res.utilization, 1.0 / 4 + 2.0 / 6 + 3.0 / 12, 1e-9);
}

TEST(EcuRta, CooperativeSegmentBlocksHigherPriority) {
  Task coop = mk("coop", 9, Duration::ms(6), Duration::ms(50), SchedClass::kCooperativeTask);
  coop.max_segment = Duration::ms(2);
  const EcuRta rta{{mk("hi", 1, Duration::ms(1), Duration::ms(10)), coop}};
  const TaskResult hi = rta.analyze_task(0);
  // One non-preemptible 2 ms segment of the cooperative task.
  EXPECT_EQ(hi.blocking, Duration::ms(2));
  EXPECT_EQ(hi.wcrt, Duration::ms(3));
}

TEST(EcuRta, CooperativeWithoutSegmentsBlocksWholeWcet) {
  Task coop = mk("coop", 9, Duration::ms(6), Duration::ms(50), SchedClass::kCooperativeTask);
  const EcuRta rta{{mk("hi", 1, Duration::ms(1), Duration::ms(10)), coop}};
  EXPECT_EQ(rta.analyze_task(0).blocking, Duration::ms(6));
}

TEST(EcuRta, InterruptPreemptsAnyTaskPriority) {
  // ISR has a numerically *larger* priority value but still preempts.
  const EcuRta rta{{mk("task", 1, Duration::ms(5), Duration::ms(20)),
                    mk("isr", 99, Duration::ms(1), Duration::ms(10), SchedClass::kInterrupt)}};
  const EcuResult res = rta.analyze();
  EXPECT_EQ(res.tasks[1].wcrt, Duration::ms(1));      // ISR runs immediately
  EXPECT_EQ(res.tasks[0].wcrt, Duration::ms(6));      // task suffers one ISR
}

TEST(EcuRta, InterruptsUnaffectedByCooperativeSegments) {
  Task coop = mk("coop", 1, Duration::ms(6), Duration::ms(50), SchedClass::kCooperativeTask);
  const EcuRta rta{
      {coop, mk("isr", 5, Duration::ms(1), Duration::ms(10), SchedClass::kInterrupt)}};
  EXPECT_EQ(rta.analyze_task(1).blocking, Duration::zero());
  EXPECT_EQ(rta.analyze_task(1).wcrt, Duration::ms(1));
}

TEST(EcuRta, OsOverheadChargedPerActivation) {
  Task t1 = mk("t1", 1, Duration::ms(1), Duration::ms(4));
  t1.os_overhead = Duration::us(100);
  Task t2 = mk("t2", 2, Duration::ms(2), Duration::ms(8));
  const EcuRta rta{{t1, t2}};
  EXPECT_EQ(rta.analyze_task(0).wcrt, Duration::us(1100));
  // t2 sees t1's overhead as extra interference.
  EXPECT_EQ(rta.analyze_task(1).wcrt, Duration::us(3100));
}

TEST(EcuRta, ActivationJitterAddsInterference) {
  Task hp = mk("hp", 1, Duration::ms(2), Duration::ms(10));
  hp.activation = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(9));
  const EcuRta rta{{hp, mk("lp", 2, Duration::ms(4), Duration::ms(20))}};
  // Window of 6 ms sees 2 hp activations (ceil((6+9)/10)): 4 + 2*2 = 8 ms.
  EXPECT_EQ(rta.analyze_task(1).wcrt, Duration::ms(8));
}

TEST(EcuRta, MultiInstanceBusyWindow) {
  // Task with deadline > period: its own backlog matters.
  Task t1 = mk("t1", 1, Duration::ms(3), Duration::ms(4));
  t1.deadline = Duration::ms(20);
  Task t2 = mk("t2", 2, Duration::ms(2), Duration::ms(16));
  t2.deadline = Duration::ms(20);
  const EcuRta rta{{t1, t2}};
  const TaskResult r2 = rta.analyze_task(1);
  // Hand value: w = 2 + ceil(w/4)*3 converges at w = 8 ms.
  EXPECT_EQ(r2.wcrt, Duration::ms(8));
  EXPECT_GE(rta.analyze_task(0).instances, 1);
}

TEST(EcuRta, OverloadDiverges) {
  const EcuRta rta{{mk("a", 1, Duration::ms(6), Duration::ms(10)),
                    mk("b", 2, Duration::ms(6), Duration::ms(10))},
                   Duration::ms(200)};
  const EcuResult res = rta.analyze();
  EXPECT_GT(res.utilization, 1.0);
  EXPECT_TRUE(res.tasks[1].diverged);
  EXPECT_FALSE(res.all_schedulable());
  EXPECT_EQ(res.miss_count(), 1u);
}

TEST(EcuRta, ValidationRejectsBadTasks) {
  Task bad = mk("x", 1, Duration::ms(1), Duration::ms(5));
  bad.wcet = Duration::zero();
  EXPECT_THROW(EcuRta{{bad}}, std::invalid_argument);

  Task inverted = mk("y", 1, Duration::ms(1), Duration::ms(5));
  inverted.bcet = Duration::ms(2);
  EXPECT_THROW(EcuRta{{inverted}}, std::invalid_argument);

  EXPECT_THROW(EcuRta({mk("a", 1, Duration::ms(1), Duration::ms(5)),
                       mk("b", 1, Duration::ms(1), Duration::ms(5))}),
               std::invalid_argument);
}

TEST(EcuRta, DuplicatePrioritiesAllowedAcrossClassSpaces) {
  // An ISR and a task may share the numeric priority value.
  EXPECT_NO_THROW(EcuRta({mk("a", 1, Duration::ms(1), Duration::ms(5)),
                          mk("b", 1, Duration::ms(1), Duration::ms(5),
                             SchedClass::kInterrupt)}));
}

TEST(EcuRta, BadIndexThrows) {
  const EcuRta rta{{mk("a", 1, Duration::ms(1), Duration::ms(5))}};
  EXPECT_THROW(rta.analyze_task(1), std::out_of_range);
}

TEST(EcuRta, ResponseJitterFeedsComposition) {
  const EcuRta rta{{mk("a", 1, Duration::ms(1), Duration::ms(4)),
                    mk("b", 2, Duration::ms(2), Duration::ms(6))}};
  const TaskResult b = rta.analyze_task(1);
  EXPECT_EQ(b.response_jitter(), b.wcrt - b.bcrt);
  EXPECT_EQ(b.bcrt, Duration::ms(1));  // bcet = wcet/2
}

/// Property: responses are monotone in a uniform WCET scale factor.
class EcuRtaScale : public ::testing::TestWithParam<double> {};

TEST_P(EcuRtaScale, MonotoneInWcet) {
  const double scale = GetParam();
  auto build = [&](double s) {
    return EcuRta{{mk("t1", 1, Duration::us(static_cast<std::int64_t>(1000 * s)), Duration::ms(4)),
                   mk("t2", 2, Duration::us(static_cast<std::int64_t>(2000 * s)), Duration::ms(6)),
                   mk("t3", 3, Duration::us(static_cast<std::int64_t>(3000 * s)),
                      Duration::ms(12))}};
  };
  const EcuResult base = build(1.0).analyze();
  const EcuResult scaled = build(scale).analyze();
  for (std::size_t i = 0; i < base.tasks.size(); ++i)
    EXPECT_GE(scaled.tasks[i].wcrt, base.tasks[i].wcrt);
}

INSTANTIATE_TEST_SUITE_P(Scales, EcuRtaScale, ::testing::Values(1.0, 1.1, 1.25, 1.5));

}  // namespace
}  // namespace symcan

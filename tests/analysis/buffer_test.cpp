#include "symcan/analysis/buffer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

TEST(MaxBacklog, EmptyArrivalsNeedNoQueue) {
  const auto b = max_backlog({}, EventModel::periodic(Duration::ms(1)));
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 0);
}

TEST(MaxBacklog, MatchedRatesNeedOneSlot) {
  // One 10 ms stream into a 10 ms server: at most one pending.
  const auto b = max_backlog({EventModel::periodic(Duration::ms(10))},
                             EventModel::periodic(Duration::ms(10)));
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 1);
}

TEST(MaxBacklog, FastServerStaysAtOne) {
  const auto b = max_backlog({EventModel::periodic(Duration::ms(10))},
                             EventModel::periodic(Duration::ms(1)));
  ASSERT_TRUE(b);
  EXPECT_EQ(*b, 1);
}

TEST(MaxBacklog, BurstFillsTheQueue) {
  // Bursty arrivals: J = 3 periods, min distance 1 ms -> bursts of 4.
  const EventModel bursty =
      EventModel::periodic_burst(Duration::ms(10), Duration::ms(30), Duration::ms(1));
  const auto b = max_backlog({bursty}, EventModel::periodic(Duration::ms(10)));
  ASSERT_TRUE(b);
  EXPECT_GE(*b, 4);
}

TEST(MaxBacklog, MultiplexedStreamsAddUp) {
  std::vector<EventModel> arrivals(3, EventModel::periodic(Duration::ms(10)));
  const auto b = max_backlog(arrivals, EventModel::periodic(Duration::ms(3)));
  ASSERT_TRUE(b);
  // Three simultaneous arrivals, server removes one per 3 ms.
  EXPECT_EQ(*b, 3);
}

TEST(MaxBacklog, OverloadIsUnbounded) {
  std::vector<EventModel> arrivals(3, EventModel::periodic(Duration::ms(10)));
  EXPECT_FALSE(max_backlog(arrivals, EventModel::periodic(Duration::ms(5))));
}

TEST(MaxBacklog, ServiceJitterGrowsTheBound) {
  const EventModel arrivals = EventModel::periodic(Duration::ms(10));
  const auto crisp = max_backlog({arrivals}, EventModel::periodic(Duration::ms(5)));
  const auto sloppy = max_backlog(
      {arrivals}, EventModel::periodic_jitter(Duration::ms(5), Duration::ms(22)));
  ASSERT_TRUE(crisp);
  ASSERT_TRUE(sloppy);
  EXPECT_GT(*sloppy, *crisp);
}

TEST(SizeReceiveQueue, CountsOnlyThisNodesSubscriptions) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  const EventModel service = EventModel::periodic(Duration::us(500));
  const QueueReport r = size_receive_queue(km, km.nodes().front().name, service);
  std::int64_t expected = 0;
  for (const auto& m : km.messages())
    for (const auto& rx : m.receivers)
      if (rx == km.nodes().front().name) ++expected;
  EXPECT_EQ(r.messages_multiplexed, expected);
  ASSERT_TRUE(r.backlog);
  EXPECT_GE(*r.backlog, 1);
  EXPECT_EQ(r.recommended_depth(), *r.backlog + 1);
  EXPECT_FALSE(r.overflows(r.recommended_depth()));
  EXPECT_TRUE(r.overflows(0));
}

TEST(SizeReceiveQueue, UnknownNodeThrows) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  EXPECT_THROW(size_receive_queue(km, "NOPE", EventModel::periodic(Duration::ms(1))),
               std::invalid_argument);
}

TEST(SizeReceiveQueue, SlowDriverOverflowsSmallQueue) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  // A 20 ms polling driver cannot keep up with dozens of fast streams.
  const QueueReport r =
      size_receive_queue(km, km.nodes().front().name, EventModel::periodic(Duration::ms(20)));
  EXPECT_TRUE(r.overflows(2));
}

}  // namespace
}  // namespace symcan

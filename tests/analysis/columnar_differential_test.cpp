// Layout-differential battery for the columnar solve core: the packed
// structure-of-arrays path must reproduce the legacy object-graph path
// bit for bit, in integer nanoseconds, across every assumption preset
// and a spread of seeded workloads. A columnar refactor can only go
// wrong silently — by reordering a summation, dropping a normalization,
// or resolving an interference set differently — and every one of those
// shows up here as a field-level mismatch naming the seed, preset and
// message.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/columnar.hpp"
#include "symcan/analysis/ecu_rta.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/analysis/provenance.hpp"
#include "symcan/analysis/rta_context.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct Preset {
  const char* name;
  CanRtaConfig cfg;
};

/// The five canonical assumption presets: the two Figure 5 framings, the
/// default, and the two single-switch ablations (offset-blind, fullCAN
/// queues) that flip which pack-time branches run.
std::vector<Preset> presets() {
  std::vector<Preset> out;
  out.push_back({"default", CanRtaConfig{}});
  CanRtaConfig no_offsets;
  no_offsets.use_offsets = false;
  out.push_back({"no_offsets", no_offsets});
  out.push_back({"best_case", best_case_assumptions()});
  out.push_back({"worst_case", worst_case_assumptions()});
  CanRtaConfig no_queues = worst_case_assumptions();
  no_queues.model_controller_queues = false;
  out.push_back({"worst_case_no_queues", no_queues});
  return out;
}

/// Twenty seeded matrices spanning the workload axes the pack branches
/// on: basicCAN senders (intra-node blocking), TimeTable offsets with
/// grid-snapped periods (bounded hyperperiods -> TtGroups built) and
/// with raw periods (unbounded -> offset-blind fallback), jitter bursts,
/// and utilizations up to divergence under the burst error model.
std::vector<KMatrix> seeded_matrices() {
  std::vector<KMatrix> out;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    PowertrainConfig cfg;
    cfg.seed = seed;
    cfg.message_count = 16 + static_cast<int>(seed % 4) * 8;
    cfg.ecu_count = 4 + static_cast<int>(seed % 3);
    cfg.basic_can_fraction = (seed % 3 == 0) ? 0.5 : 0.2;
    cfg.target_utilization = 0.45 + 0.025 * static_cast<double>(seed % 10);
    KMatrix km = generate_powertrain(cfg);
    if (seed % 2 == 0) {
      // Offset-scheduled senders; even seeds snap periods so hyperperiods
      // stay bounded and TtGroups actually build, seeds divisible by 4
      // keep raw periods to force the group-build fallback.
      if (seed % 4 == 0) snap_periods(km, Duration::ms(5));
      assign_tt_offsets(km);
    }
    if (seed % 5 == 0) assume_jitter_fraction(km, 0.25);
    out.push_back(std::move(km));
  }
  return out;
}

void expect_result_eq(const MessageResult& legacy, const MessageResult& columnar,
                      const std::string& where) {
  EXPECT_EQ(legacy.name, columnar.name) << where;
  EXPECT_EQ(legacy.id, columnar.id) << where;
  EXPECT_EQ(legacy.wcrt.count_ns(), columnar.wcrt.count_ns()) << where;
  EXPECT_EQ(legacy.bcrt.count_ns(), columnar.bcrt.count_ns()) << where;
  EXPECT_EQ(legacy.deadline.count_ns(), columnar.deadline.count_ns()) << where;
  EXPECT_EQ(legacy.blocking.count_ns(), columnar.blocking.count_ns()) << where;
  EXPECT_EQ(legacy.busy_period.count_ns(), columnar.busy_period.count_ns()) << where;
  EXPECT_EQ(legacy.instances, columnar.instances) << where;
  EXPECT_EQ(legacy.fixedpoint_iterations, columnar.fixedpoint_iterations) << where;
  EXPECT_EQ(legacy.schedulable, columnar.schedulable) << where;
  EXPECT_EQ(legacy.diverged, columnar.diverged) << where;
}

/// solve_columnar() + the caller-side identity patch, as the analyzers
/// apply it.
MessageResult columnar_message(const analysis::ColumnarBus& bus, const KMatrix& km,
                               std::size_t i) {
  MessageResult r = analysis::solve_columnar(bus, i);
  r.name = km.messages()[i].name;
  r.id = km.messages()[i].id;
  return r;
}

TEST(ColumnarDifferential, MessagesBitIdenticalAcrossSeedsAndPresets) {
  const auto matrices = seeded_matrices();
  const auto ps = presets();
  std::size_t diverged_seen = 0;
  std::size_t groups_seen = 0;
  for (std::size_t mi = 0; mi < matrices.size(); ++mi) {
    const KMatrix& km = matrices[mi];
    for (const Preset& p : ps) {
      const analysis::ColumnarBus bus = analysis::pack_bus(km, p.cfg);
      ASSERT_EQ(bus.size(), km.size());
      groups_seen += bus.tt_groups.size();
      for (std::size_t i = 0; i < km.size(); ++i) {
        const MessageResult legacy =
            analysis::solve_message(analysis::build_message_context(km, p.cfg, i));
        const MessageResult col = columnar_message(bus, km, i);
        diverged_seen += legacy.diverged ? 1 : 0;
        expect_result_eq(legacy, col,
                         "seed matrix #" + std::to_string(mi) + " preset " + p.name +
                             " message " + km.messages()[i].name);
      }
    }
  }
  // The battery must actually reach the interesting branches; a workload
  // change that stops producing offset groups would silently weaken it.
  EXPECT_GT(groups_seen, 0u);
  SUCCEED() << "diverged verdicts covered: " << diverged_seen;
}

TEST(ColumnarDifferential, PublicAnalyzeMatchesPerMessageAdapter) {
  // CanRta::analyze() runs the columnar path; analyze_message() stays on
  // build+solve. The whole-bus result must equal the per-message loop.
  for (std::uint64_t seed : {3u, 8u, 15u}) {
    PowertrainConfig wcfg;
    wcfg.seed = seed;
    wcfg.message_count = 32;
    KMatrix km = generate_powertrain(wcfg);
    if (seed == 8u) {
      snap_periods(km, Duration::ms(5));
      assign_tt_offsets(km);
    }
    for (const Preset& p : presets()) {
      const CanRta rta{km, p.cfg};
      const BusResult whole = rta.analyze();
      ASSERT_EQ(whole.messages.size(), km.size());
      for (std::size_t i = 0; i < km.size(); ++i)
        expect_result_eq(rta.analyze_message(i), whole.messages[i],
                         "seed " + std::to_string(seed) + " preset " + p.name + " message " +
                             km.messages()[i].name);
    }
  }
}

TEST(ColumnarDifferential, ExplainStillResumsExactly) {
  // Provenance runs the legacy tracing solver; its embedded verdict must
  // equal the columnar verdict bit for bit and the decomposition must
  // still re-sum to the bound.
  PowertrainConfig wcfg;
  wcfg.seed = 7;
  wcfg.message_count = 24;
  KMatrix km = generate_powertrain(wcfg);
  snap_periods(km, Duration::ms(5));
  assign_tt_offsets(km);
  for (const Preset& p : presets()) {
    const analysis::ColumnarBus bus = analysis::pack_bus(km, p.cfg);
    for (std::size_t i = 0; i < km.size(); ++i) {
      const analysis::Provenance prov = analysis::explain_message(km, p.cfg, i);
      EXPECT_TRUE(prov.sum_check())
          << "preset " << p.name << " message " << km.messages()[i].name;
      expect_result_eq(prov.result, columnar_message(bus, km, i),
                       std::string{"explain preset "} + p.name + " message " +
                           km.messages()[i].name);
    }
  }
}

TEST(ColumnarDifferential, PerCallErrorModelOverloadMatchesRepack) {
  // The grid-sweep overload swaps the error model per solve; it must
  // equal a full repack with that model in the config.
  PowertrainConfig wcfg;
  wcfg.seed = 11;
  wcfg.message_count = 24;
  const KMatrix km = generate_powertrain(wcfg);
  CanRtaConfig base = worst_case_assumptions();
  const analysis::ColumnarBus bus = analysis::pack_bus(km, base);
  for (const Duration gap : {Duration::ms(1), Duration::ms(10), Duration::s(1)}) {
    const SporadicErrors errors{gap};
    CanRtaConfig swapped = base;
    swapped.errors = std::make_shared<SporadicErrors>(gap);
    const analysis::ColumnarBus repacked = analysis::pack_bus(km, swapped);
    for (std::size_t i = 0; i < km.size(); ++i) {
      const MessageResult a = analysis::solve_columnar(bus, i, errors);
      const MessageResult b = analysis::solve_columnar(repacked, i);
      expect_result_eq(a, b, "gap " + std::to_string(gap.count_ns()) + "ns message " +
                                 km.messages()[i].name);
    }
  }
}

/// Seeded ECU task sets spanning the scheduling classes: ISRs,
/// preemptive and cooperative tasks, segments, OS overhead and jitter.
std::vector<Task> seeded_tasks(std::uint64_t seed) {
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
  const auto next = [&] {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  };
  const std::size_t count = 4 + seed % 5;
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < count; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    const std::uint64_t r = next();
    t.sched = (r % 7 == 0)   ? SchedClass::kInterrupt
              : (r % 3 == 0) ? SchedClass::kCooperativeTask
                             : SchedClass::kPreemptiveTask;
    t.priority = static_cast<int>(i);
    const Duration period = Duration::ms(2 + static_cast<std::int64_t>(next() % 40));
    t.wcet = Duration::us(100 + static_cast<std::int64_t>(next() % 2000));
    t.bcet = t.wcet / 2;
    if (next() % 2 == 0) t.max_segment = t.wcet / 3;
    if (next() % 3 == 0) t.os_overhead = Duration::us(20);
    const Duration jitter =
        (next() % 2 == 0) ? Duration::us(static_cast<std::int64_t>(next() % 3000))
                          : Duration::zero();
    t.activation = EventModel::periodic_jitter(period, jitter);
    t.deadline = (next() % 4 == 0) ? Duration::infinite() : period;
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(ColumnarDifferential, EcuAnalyzeMatchesPerTaskAdapter) {
  // EcuRta::analyze() runs the columnar task pack; analyze_task() stays
  // legacy. Same bit-exactness contract as the bus side.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const EcuRta rta{seeded_tasks(seed), Duration::s(1)};
    const EcuResult whole = rta.analyze();
    for (std::size_t i = 0; i < whole.tasks.size(); ++i) {
      const TaskResult legacy = rta.analyze_task(i);
      const TaskResult& col = whole.tasks[i];
      const std::string where = "seed " + std::to_string(seed) + " task " + legacy.name;
      EXPECT_EQ(legacy.name, col.name) << where;
      EXPECT_EQ(legacy.wcrt.count_ns(), col.wcrt.count_ns()) << where;
      EXPECT_EQ(legacy.bcrt.count_ns(), col.bcrt.count_ns()) << where;
      EXPECT_EQ(legacy.deadline.count_ns(), col.deadline.count_ns()) << where;
      EXPECT_EQ(legacy.blocking.count_ns(), col.blocking.count_ns()) << where;
      EXPECT_EQ(legacy.busy_period.count_ns(), col.busy_period.count_ns()) << where;
      EXPECT_EQ(legacy.instances, col.instances) << where;
      EXPECT_EQ(legacy.fixedpoint_iterations, col.fixedpoint_iterations) << where;
      EXPECT_EQ(legacy.schedulable, col.schedulable) << where;
      EXPECT_EQ(legacy.diverged, col.diverged) << where;
    }
  }
}

}  // namespace
}  // namespace symcan

// IncrementalRta contract: a cache hit must be indistinguishable from a
// fresh analysis, bit for bit, in every MessageResult field — iteration
// counts included. These are the targeted unit tests behind the fuzzed
// differential harness (tests/integration/rta_cache_differential_test.cpp):
// equality across assumption presets, agreement of the three fingerprint
// entry points, partial reuse after an ID swap, LRU bounding, and the
// disabled-cache degradation path.

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/analysis/rta_context.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix test_matrix(std::uint64_t seed = 11, int messages = 24, double util = 0.55) {
  PowertrainConfig cfg;
  cfg.seed = seed;
  cfg.message_count = messages;
  cfg.ecu_count = 4;
  cfg.target_utilization = util;
  return generate_powertrain(cfg);
}

/// Field-by-field equality of two whole-bus results. Any difference is a
/// cache soundness bug, so everything the solver writes is compared.
void expect_identical(const BusResult& a, const BusResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  EXPECT_EQ(a.utilization, b.utilization);
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    const MessageResult& x = a.messages[i];
    const MessageResult& y = b.messages[i];
    SCOPED_TRACE(x.name);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.wcrt, y.wcrt);
    EXPECT_EQ(x.bcrt, y.bcrt);
    EXPECT_EQ(x.deadline, y.deadline);
    EXPECT_EQ(x.blocking, y.blocking);
    EXPECT_EQ(x.busy_period, y.busy_period);
    EXPECT_EQ(x.instances, y.instances);
    EXPECT_EQ(x.fixedpoint_iterations, y.fixedpoint_iterations);
    EXPECT_EQ(x.schedulable, y.schedulable);
    EXPECT_EQ(x.diverged, y.diverged);
  }
}

struct CfgParam {
  const char* label;
  bool offsets;      ///< Assign a TimeTable schedule before analyzing.
  CanRtaConfig (*make)();
};
void PrintTo(const CfgParam& p, std::ostream* os) { *os << p.label; }

CanRtaConfig sporadic_assumptions() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.errors = std::make_shared<SporadicErrors>(Duration::ms(40), 1);
  cfg.deadline_override.reset();
  return cfg;
}

CanRtaConfig no_queue_assumptions() {
  CanRtaConfig cfg = best_case_assumptions();
  cfg.model_controller_queues = false;
  return cfg;
}

CanRtaConfig offset_blind_assumptions() {
  CanRtaConfig cfg = worst_case_assumptions();
  cfg.use_offsets = false;
  return cfg;
}

class IncrementalRtaConfigs : public ::testing::TestWithParam<CfgParam> {
 protected:
  KMatrix matrix() const {
    KMatrix km = test_matrix();
    if (GetParam().offsets) {
      snap_periods(km, Duration::ms(1));
      assign_tt_offsets(km);
    }
    assume_jitter_fraction(km, 0.2, /*override_known=*/false);
    return km;
  }
  CanRtaConfig config() const { return GetParam().make(); }
};

TEST_P(IncrementalRtaConfigs, ColdAndWarmRunsMatchFreshAnalysisBitExactly) {
  const KMatrix km = matrix();
  const CanRtaConfig cfg = config();
  const BusResult fresh = CanRta{km, cfg}.analyze();

  // Two messages may legitimately share a context (and then a verdict);
  // the cold run misses once per *distinct* key, not once per message.
  std::unordered_set<analysis::ContextKey, analysis::ContextKeyHash> unique;
  for (const analysis::ContextKey& k : analysis::bus_fingerprints(km, cfg)) unique.insert(k);

  IncrementalRta rta;
  const BusResult cold = rta.analyze(km, cfg);
  expect_identical(cold, fresh);
  EXPECT_EQ(rta.stats().misses, static_cast<std::int64_t>(unique.size()));
  EXPECT_EQ(rta.stats().lookups(), static_cast<std::int64_t>(km.size()));

  const BusResult warm = rta.analyze(km, cfg);
  expect_identical(warm, fresh);
  EXPECT_EQ(rta.stats().misses, static_cast<std::int64_t>(unique.size()));
  EXPECT_EQ(rta.stats().lookups(), static_cast<std::int64_t>(2 * km.size()));
  EXPECT_GE(rta.stats().hit_rate(), 0.5);
}

TEST_P(IncrementalRtaConfigs, FingerprintEntryPointsAgree) {
  // The cheap lookup paths (single-message pass, whole-bus batch pass)
  // must produce exactly the key the context-based fingerprint defines —
  // otherwise hits and misses would depend on which entry point filled
  // the cache.
  const KMatrix km = matrix();
  const CanRtaConfig cfg = config();
  const std::vector<analysis::ContextKey> batch = analysis::bus_fingerprints(km, cfg);
  ASSERT_EQ(batch.size(), km.size());
  for (std::size_t i = 0; i < km.size(); ++i) {
    SCOPED_TRACE(km.messages()[i].name);
    const analysis::ContextKey from_ctx =
        analysis::context_fingerprint(analysis::build_message_context(km, cfg, i), cfg);
    const analysis::ContextKey direct = analysis::message_fingerprint(km, cfg, i);
    EXPECT_EQ(from_ctx, direct);
    EXPECT_EQ(from_ctx, batch[i]);
  }
}

TEST_P(IncrementalRtaConfigs, SingleMessageEntryPointMatchesFresh) {
  const KMatrix km = matrix();
  const CanRtaConfig cfg = config();
  const CanRta fresh{km, cfg};
  IncrementalRta rta;
  for (int pass = 0; pass < 2; ++pass) {  // cold, then fully cached
    for (std::size_t i = 0; i < km.size(); ++i) {
      SCOPED_TRACE(km.messages()[i].name);
      const MessageResult a = rta.analyze_message(km, cfg, i);
      const MessageResult b = fresh.analyze_message(i);
      EXPECT_EQ(a.wcrt, b.wcrt);
      EXPECT_EQ(a.bcrt, b.bcrt);
      EXPECT_EQ(a.blocking, b.blocking);
      EXPECT_EQ(a.fixedpoint_iterations, b.fixedpoint_iterations);
      EXPECT_EQ(a.schedulable, b.schedulable);
    }
  }
  EXPECT_GE(rta.stats().hits, static_cast<std::int64_t>(km.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Assumptions, IncrementalRtaConfigs,
    ::testing::Values(CfgParam{"best_case", false, &best_case_assumptions},
                      CfgParam{"worst_case", false, &worst_case_assumptions},
                      CfgParam{"sporadic_errors", false, &sporadic_assumptions},
                      CfgParam{"no_controller_queues", false, &no_queue_assumptions},
                      CfgParam{"tt_offsets", true, &worst_case_assumptions},
                      CfgParam{"tt_offsets_blind", true, &offset_blind_assumptions}),
    [](const ::testing::TestParamInfo<CfgParam>& info) { return info.param.label; });

TEST(IncrementalRtaTest, IdSwapOnlyResolvesChangedContexts) {
  // Two GA neighbours differing in one priority swap share interference
  // contexts for every message outside the affected span: the second
  // analysis must miss exactly on the keys the swap changed.
  const KMatrix km = test_matrix();
  const CanRtaConfig cfg = worst_case_assumptions();
  IncrementalRta rta;
  rta.analyze(km, cfg);

  PriorityOrder order = current_order(km);
  ASSERT_GE(order.size(), 6u);
  std::swap(order[2], order[3]);
  const KMatrix swapped = apply_priority_order(km, order);

  std::unordered_set<analysis::ContextKey, analysis::ContextKeyHash> seen;
  for (const analysis::ContextKey& k : analysis::bus_fingerprints(km, cfg)) seen.insert(k);
  std::size_t expected_new = 0;
  for (const analysis::ContextKey& k : analysis::bus_fingerprints(swapped, cfg))
    if (seen.insert(k).second) ++expected_new;

  const RtaCacheStats before = rta.stats();
  expect_identical(rta.analyze(swapped, cfg), CanRta{swapped, cfg}.analyze());
  const RtaCacheStats after = rta.stats();
  EXPECT_EQ(after.misses - before.misses, static_cast<std::int64_t>(expected_new));
  // The swap must not invalidate the whole bus — most verdicts are reused.
  EXPECT_LT(expected_new, km.size());
  EXPECT_GT(after.hits - before.hits, 0);
}

TEST(IncrementalRtaTest, StructurallyEqualMatrixIsRelabeledNotResolved) {
  // Reassigning IDs without changing relative priorities, costs or event
  // models yields structurally identical contexts: the second matrix is
  // answered entirely from cache, under its own names and IDs.
  const KMatrix km = test_matrix(7, 16, 0.45);
  const CanRtaConfig cfg = best_case_assumptions();
  IncrementalRta rta;
  rta.analyze(km, cfg);
  const std::int64_t misses = rta.stats().misses;

  const KMatrix relabeled = apply_priority_order(km, current_order(km), /*base=*/0x300);
  const BusResult res = rta.analyze(relabeled, cfg);
  EXPECT_EQ(rta.stats().misses, misses) << "relabeling must not cause a single re-solve";
  expect_identical(res, CanRta{relabeled, cfg}.analyze());
  for (std::size_t i = 0; i < relabeled.size(); ++i) {
    EXPECT_EQ(res.messages[i].id, relabeled.messages()[i].id);
    EXPECT_EQ(res.messages[i].name, relabeled.messages()[i].name);
  }
}

TEST(IncrementalRtaTest, LruEvictionBoundsSizeWithoutCorruptingResults) {
  const KMatrix km = test_matrix();
  const CanRtaConfig cfg = worst_case_assumptions();
  RtaCacheConfig cache;
  cache.capacity = 8;
  IncrementalRta rta{cache};
  const BusResult fresh = CanRta{km, cfg}.analyze();
  expect_identical(rta.analyze(km, cfg), fresh);
  EXPECT_LE(rta.size(), cache.capacity);
  EXPECT_GT(rta.stats().evictions, 0);
  // A matrix larger than the capacity thrashes — correctness must hold
  // even when every lookup misses.
  expect_identical(rta.analyze(km, cfg), fresh);
  EXPECT_LE(rta.size(), cache.capacity);
}

TEST(IncrementalRtaTest, DisabledCacheDegradesToPlainSolveBitExactly) {
  const KMatrix km = test_matrix();
  const CanRtaConfig cfg = worst_case_assumptions();
  RtaCacheConfig off;
  off.enabled = false;
  IncrementalRta rta{off};
  const BusResult fresh = CanRta{km, cfg}.analyze();
  expect_identical(rta.analyze(km, cfg), fresh);
  expect_identical(rta.analyze(km, cfg), fresh);
  EXPECT_EQ(rta.size(), 0u);
  EXPECT_EQ(rta.stats().lookups(), 0);
}

TEST(IncrementalRtaTest, ClearDropsEntriesButKeepsLifetimeStats) {
  const KMatrix km = test_matrix(3, 8, 0.30);
  const CanRtaConfig cfg = best_case_assumptions();
  IncrementalRta rta;
  rta.analyze(km, cfg);
  EXPECT_GT(rta.size(), 0u);
  EXPECT_LE(rta.size(), km.size());
  const std::int64_t first_misses = rta.stats().misses;
  rta.clear();
  EXPECT_EQ(rta.size(), 0u);
  EXPECT_EQ(rta.stats().misses, first_misses);
  rta.analyze(km, cfg);
  EXPECT_EQ(rta.stats().misses, 2 * first_misses);
}

TEST(IncrementalRtaTest, ZeroCapacityIsRejected) {
  RtaCacheConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(IncrementalRta{cfg}, std::invalid_argument);
}

TEST(IncrementalRtaTest, NullErrorModelIsRejected) {
  const KMatrix km = test_matrix(3, 8, 0.30);
  CanRtaConfig cfg;
  cfg.errors = nullptr;
  IncrementalRta rta;
  EXPECT_THROW(rta.analyze(km, cfg), std::invalid_argument);
  EXPECT_THROW(rta.analyze_message(km, cfg, 0), std::invalid_argument);
}

TEST(IncrementalRtaTest, ConfigChangesNeverHitStaleEntries) {
  // Flipping any analysis switch must change the affected keys: the same
  // matrix under different assumptions may share no verdicts. (Coarse
  // guard; the differential harness fuzzes the full config space.)
  const KMatrix km = test_matrix();
  IncrementalRta rta;
  const CanRtaConfig wc = worst_case_assumptions();
  const BusResult a = rta.analyze(km, wc);
  expect_identical(rta.analyze(km, best_case_assumptions()),
                   CanRta{km, best_case_assumptions()}.analyze());
  CanRtaConfig no_offsets = wc;
  no_offsets.use_offsets = false;
  expect_identical(rta.analyze(km, no_offsets), CanRta{km, no_offsets}.analyze());
  // And the original assumptions still answer from cache, unchanged.
  const RtaCacheStats before = rta.stats();
  expect_identical(rta.analyze(km, wc), a);
  EXPECT_EQ(rta.stats().misses, before.misses);
}

}  // namespace
}  // namespace symcan

// Sharded-RTA-cache contract: sharding changes only lock granularity and
// eviction locality — never verdicts. Any shard count must return
// results bit-identical to a fresh CanRta analysis and to the historical
// single-LRU cache, and the aggregated stats/size views must stay
// consistent with what each shard records.

#include <gtest/gtest.h>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix test_matrix(std::uint64_t seed = 11, int messages = 24, double util = 0.55) {
  PowertrainConfig cfg;
  cfg.seed = seed;
  cfg.message_count = messages;
  cfg.ecu_count = 4;
  cfg.target_utilization = util;
  return generate_powertrain(cfg);
}

/// Field-by-field equality; any difference is a cache soundness bug.
void expect_identical(const BusResult& a, const BusResult& b) {
  ASSERT_EQ(a.messages.size(), b.messages.size());
  EXPECT_EQ(a.utilization, b.utilization);
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    const MessageResult& x = a.messages[i];
    const MessageResult& y = b.messages[i];
    SCOPED_TRACE(x.name);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.wcrt, y.wcrt);
    EXPECT_EQ(x.bcrt, y.bcrt);
    EXPECT_EQ(x.deadline, y.deadline);
    EXPECT_EQ(x.blocking, y.blocking);
    EXPECT_EQ(x.busy_period, y.busy_period);
    EXPECT_EQ(x.instances, y.instances);
    EXPECT_EQ(x.fixedpoint_iterations, y.fixedpoint_iterations);
    EXPECT_EQ(x.schedulable, y.schedulable);
    EXPECT_EQ(x.diverged, y.diverged);
  }
}

RtaCacheConfig sharded(std::size_t shards, std::size_t capacity = 65536) {
  RtaCacheConfig cfg;
  cfg.shards = shards;
  cfg.capacity = capacity;
  return cfg;
}

TEST(ShardedRtaTest, AnyShardCountMatchesFreshAnalysis) {
  const KMatrix km = test_matrix();
  for (const CanRtaConfig& rta : {worst_case_assumptions(), best_case_assumptions()}) {
    const BusResult fresh = CanRta{km, rta}.analyze();
    for (const std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      SCOPED_TRACE(shards);
      IncrementalRta cache{sharded(shards)};
      expect_identical(cache.analyze(km, rta), fresh);  // All misses.
      expect_identical(cache.analyze(km, rta), fresh);  // All hits.
      EXPECT_EQ(cache.stats().hits, static_cast<std::int64_t>(km.size()));
    }
  }
}

TEST(ShardedRtaTest, ShardsPartitionTheKeySpace) {
  const KMatrix km = test_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  IncrementalRta cache{sharded(8)};
  EXPECT_EQ(cache.shard_count(), 8u);
  cache.analyze(km, rta);
  // Every message landed in exactly one shard: the aggregate size is the
  // number of distinct contexts, here one per message.
  EXPECT_EQ(cache.size(), km.size());
  EXPECT_EQ(cache.stats().misses, static_cast<std::int64_t>(km.size()));
  // The same keys route to the same shards on re-analysis: zero misses.
  cache.analyze(km, rta);
  EXPECT_EQ(cache.stats().misses, static_cast<std::int64_t>(km.size()));
}

TEST(ShardedRtaTest, ShardCountClampsToCapacity) {
  // 8 shards over capacity 2 would give every shard capacity 0; the
  // constructor clamps so every shard holds at least one entry.
  IncrementalRta cache{sharded(8, 2)};
  EXPECT_EQ(cache.shard_count(), 2u);
  EXPECT_THROW(IncrementalRta{sharded(0)}, std::invalid_argument);
  EXPECT_THROW(IncrementalRta{sharded(1, 0)}, std::invalid_argument);
}

TEST(ShardedRtaTest, TinyShardsEvictButStayCorrect) {
  const KMatrix km = test_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  const BusResult fresh = CanRta{km, rta}.analyze();
  // Fewer total entries than messages: constant churn, still correct.
  IncrementalRta cache{sharded(4, 8)};
  for (int round = 0; round < 3; ++round) expect_identical(cache.analyze(km, rta), fresh);
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ShardedRtaTest, ClearEmptiesEveryShardAndKeepsStats) {
  const KMatrix km = test_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  IncrementalRta cache{sharded(8)};
  cache.analyze(km, rta);
  const std::int64_t misses = cache.stats().misses;
  ASSERT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, misses);
  // Post-clear analysis re-misses every context and stays correct.
  expect_identical(cache.analyze(km, rta), CanRta{km, rta}.analyze());
  EXPECT_EQ(cache.stats().misses, 2 * misses);
}

TEST(ShardedRtaTest, SharedAcrossParallelWorkersStaysBitIdentical) {
  // The serve batcher's usage: many workers, one sharded cache, distinct
  // matrices. Every response must match its own fresh analysis.
  std::vector<KMatrix> matrices;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    matrices.push_back(test_matrix(seed, 16, 0.45));
  const CanRtaConfig rta = worst_case_assumptions();
  IncrementalRta cache{sharded(8)};
  ParallelExecutor pool{4};
  const std::vector<BusResult> results =
      pool.parallel_map(matrices, [&](const KMatrix& km) { return cache.analyze(km, rta); });
  ASSERT_EQ(results.size(), matrices.size());
  for (std::size_t i = 0; i < matrices.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(results[i], CanRta{matrices[i], rta}.analyze());
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            cache.stats().lookups());
}

}  // namespace
}  // namespace symcan

#include "symcan/analysis/error_model.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

namespace symcan {
namespace {

const BitTiming timing{500'000};  // 2 us per bit

TEST(NoErrors, AlwaysZero) {
  NoErrors e;
  EXPECT_EQ(e.max_faults(Duration::s(100)), 0);
  EXPECT_EQ(e.overhead(Duration::s(100), Duration::ms(1), timing), Duration::zero());
  EXPECT_EQ(e.name(), "no-errors");
}

TEST(SporadicErrors, CountsCeilOfWindow) {
  SporadicErrors e{Duration::ms(10)};
  EXPECT_EQ(e.max_faults(Duration::zero()), 0);
  EXPECT_EQ(e.max_faults(Duration::ms(1)), 1);
  EXPECT_EQ(e.max_faults(Duration::ms(10)), 1);
  EXPECT_EQ(e.max_faults(Duration::ms(10) + Duration::ns(1)), 2);
  EXPECT_EQ(e.max_faults(Duration::ms(95)), 10);
}

TEST(SporadicErrors, InitialErrorsAddConstant) {
  SporadicErrors e{Duration::ms(10), 3};
  EXPECT_EQ(e.max_faults(Duration::ms(1)), 4);
  EXPECT_EQ(e.max_faults(Duration::zero()), 0);
}

TEST(SporadicErrors, OverheadIsFaultsTimesRecoveryPlusRetx) {
  SporadicErrors e{Duration::ms(10)};
  // 1 fault in 5 ms: 31 bits * 2 us + 270 us retransmission = 332 us.
  EXPECT_EQ(e.overhead(Duration::ms(5), Duration::us(270), timing), Duration::us(332));
  // 2 faults in 15 ms.
  EXPECT_EQ(e.overhead(Duration::ms(15), Duration::us(270), timing), Duration::us(664));
}

TEST(SporadicErrors, RejectsBadParameters) {
  EXPECT_THROW(SporadicErrors(Duration::zero()), std::invalid_argument);
  EXPECT_THROW(SporadicErrors(Duration::ms(1), -1), std::invalid_argument);
}

TEST(SporadicErrors, NameMentionsInterval) {
  EXPECT_NE(SporadicErrors{Duration::ms(10)}.name().find("10 ms"), std::string::npos);
}

TEST(BurstErrors, InstantaneousCountPerBurst) {
  BurstErrors e{Duration::ms(50), 4};
  EXPECT_EQ(e.max_faults(Duration::ms(1)), 4);
  EXPECT_EQ(e.max_faults(Duration::ms(50) + Duration::ns(1)), 8);
  EXPECT_EQ(e.max_faults(Duration::zero()), 0);
}

TEST(BurstErrors, IntraBurstGapLimitsTrailingBurst) {
  BurstErrors e{Duration::ms(50), 4, Duration::ms(1)};
  // Window of 2 ms: one burst started, but only ceil(2/1)=2 of its faults
  // fit the window.
  EXPECT_EQ(e.max_faults(Duration::ms(2)), 2);
  // Window of 10 ms: whole burst of 4 (capped by burst size).
  EXPECT_EQ(e.max_faults(Duration::ms(10)), 4);
}

TEST(BurstErrors, OverheadExtendsWindowByBurstExtent) {
  BurstErrors e{Duration::ms(50), 4};
  const Duration per_fault = timing.duration_of(error_frame_bits) + Duration::us(270);  // 332 us
  // Extent = 3 * 332 us = 996 us. Window 49.1 ms + extent > 50 ms -> 2 bursts.
  const Duration w = Duration::us(49'100);
  EXPECT_EQ(e.overhead(w, Duration::us(270), timing), 8 * per_fault);
  // Small window: one burst's worth.
  EXPECT_EQ(e.overhead(Duration::ms(1), Duration::us(270), timing), 4 * per_fault);
}

TEST(BurstErrors, SingleErrorBurstEqualsSporadicOverhead) {
  BurstErrors b{Duration::ms(10), 1};
  SporadicErrors s{Duration::ms(10)};
  for (const Duration w : {Duration::ms(1), Duration::ms(10), Duration::ms(33)})
    EXPECT_EQ(b.overhead(w, Duration::us(270), timing), s.overhead(w, Duration::us(270), timing));
}

TEST(BurstErrors, RejectsBadParameters) {
  EXPECT_THROW(BurstErrors(Duration::zero(), 2), std::invalid_argument);
  EXPECT_THROW(BurstErrors(Duration::ms(1), 0), std::invalid_argument);
  EXPECT_THROW(BurstErrors(Duration::ms(1), 2, -Duration::ms(1)), std::invalid_argument);
}

TEST(ErrorModelClone, PreservesBehaviour) {
  BurstErrors b{Duration::ms(25), 4};
  auto c = b.clone();
  EXPECT_EQ(c->max_faults(Duration::ms(30)), b.max_faults(Duration::ms(30)));
  EXPECT_EQ(c->name(), b.name());
}

/// Property: overhead is monotone non-decreasing in the window for all
/// model families (required for fixed-point convergence).
class ErrorMonotonicity : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<ErrorModel> model() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<NoErrors>();
      case 1:
        return std::make_unique<SporadicErrors>(Duration::ms(7));
      case 2:
        return std::make_unique<SporadicErrors>(Duration::ms(7), 2);
      case 3:
        return std::make_unique<BurstErrors>(Duration::ms(31), 5);
      default:
        return std::make_unique<BurstErrors>(Duration::ms(31), 5, Duration::us(700));
    }
  }
};

TEST_P(ErrorMonotonicity, OverheadMonotoneInWindow) {
  const auto m = model();
  Duration prev = Duration::zero();
  for (Duration w = Duration::zero(); w <= Duration::ms(200); w += Duration::us(913)) {
    const Duration v = m->overhead(w, Duration::us(270), timing);
    EXPECT_GE(v, prev) << "at " << to_string(w);
    prev = v;
  }
}

TEST_P(ErrorMonotonicity, OverheadMonotoneInRetxFrame) {
  const auto m = model();
  EXPECT_LE(m->overhead(Duration::ms(40), Duration::us(100), timing),
            m->overhead(Duration::ms(40), Duration::us(270), timing));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ErrorMonotonicity, ::testing::Range(0, 5));

TEST(FixedFaults, ConstantCountForAnyPositiveWindow) {
  FixedFaults e{3};
  EXPECT_EQ(e.max_faults(Duration::zero()), 0);
  EXPECT_EQ(e.max_faults(Duration::ns(1)), 3);
  EXPECT_EQ(e.max_faults(Duration::s(100)), 3);
  EXPECT_EQ(e.faults(), 3);
}

TEST(FixedFaults, ZeroFaultsBehavesLikeNoErrors) {
  FixedFaults e{0};
  NoErrors none;
  for (const Duration w : {Duration::ms(1), Duration::ms(40), Duration::s(1)})
    EXPECT_EQ(e.overhead(w, Duration::us(270), timing), none.overhead(w, Duration::us(270), timing));
}

TEST(FixedFaults, RejectsNegativeCount) {
  EXPECT_THROW(FixedFaults{-1}, std::invalid_argument);
}

TEST(FixedFaults, NameMentionsCount) {
  EXPECT_NE(FixedFaults{7}.name().find("7"), std::string::npos);
}

TEST(FixedFaults, ClonePreservesCount) {
  FixedFaults e{5};
  auto c = e.clone();
  EXPECT_EQ(c->max_faults(Duration::ms(1)), 5);
  EXPECT_EQ(c->fingerprint(), e.fingerprint());
}

/// Satellite audit: the incremental-RTA cache folds fingerprint() into
/// its per-message key, so two models whose overhead curves differ MUST
/// have different fingerprints — a collision would serve one model's
/// cached bound as the other's. The default fingerprint hashes name()
/// only, which silently collides for any model with parameters that
/// change overhead() but not name() (BurstErrors' intra_burst_gap is
/// exactly such a parameter); this grid locks every concrete model into
/// an explicit parameter-hashing override.
TEST(ErrorModelFingerprint, DifferentOverheadCurvesImplyDifferentFingerprints) {
  std::vector<std::unique_ptr<ErrorModel>> models;
  models.push_back(std::make_unique<NoErrors>());
  for (const std::int64_t gap_ms : {1, 7, 10, 25, 40})
    for (const std::int64_t initial : {0, 1, 3})
      models.push_back(std::make_unique<SporadicErrors>(Duration::ms(gap_ms), initial));
  for (const std::int64_t gap_ms : {1, 10, 25})
    for (const std::int64_t burst : {1, 2, 4})
      for (const std::int64_t intra_us : {0, 500, 700})
        models.push_back(std::make_unique<BurstErrors>(Duration::ms(gap_ms), burst,
                                                       Duration::us(intra_us)));
  for (const std::int64_t k : {0, 1, 2, 5, 96})
    models.push_back(std::make_unique<FixedFaults>(k));

  // An overhead curve sampled densely enough to distinguish every pair
  // in the grid (windows straddle the gap/burst boundaries above).
  const auto curve = [&](const ErrorModel& m) {
    std::vector<Duration> samples;
    for (const Duration w :
         {Duration::zero(), Duration::us(400), Duration::ms(1), Duration::us(1'600),
          Duration::ms(5), Duration::ms(9), Duration::ms(15), Duration::ms(24),
          Duration::ms(60), Duration::ms(150), Duration::s(1)}) {
      samples.push_back(m.overhead(w, Duration::us(270), timing));
      samples.push_back(Duration::ns(m.max_faults(w)));
    }
    return samples;
  };

  std::vector<std::vector<Duration>> curves;
  curves.reserve(models.size());
  for (const auto& m : models) curves.push_back(curve(*m));
  for (std::size_t a = 0; a < models.size(); ++a) {
    for (std::size_t b = a + 1; b < models.size(); ++b) {
      if (curves[a] != curves[b]) {
        EXPECT_NE(models[a]->fingerprint(), models[b]->fingerprint())
            << models[a]->name() << " vs " << models[b]->name();
      }
    }
  }
}

TEST(ErrorModelSaturation, SporadicFaultCountSaturatesNearInfinity) {
  // A hostile window (near Duration::infinite()) with a tiny inter-error
  // interval must saturate the fault count, not wrap into the negatives.
  SporadicErrors e{Duration::ns(1), std::numeric_limits<std::int64_t>::max() - 1};
  const std::int64_t n = e.max_faults(Duration::infinite() - Duration::ns(1));
  EXPECT_EQ(n, std::numeric_limits<std::int64_t>::max());
  EXPECT_GE(e.max_faults(Duration::s(1)), 0);
}

TEST(ErrorModelSaturation, BurstFaultCountSaturatesNearInfinity) {
  BurstErrors e{Duration::ns(1), std::numeric_limits<std::int64_t>::max() / 2};
  const std::int64_t n = e.max_faults(Duration::infinite() - Duration::ns(1));
  EXPECT_GT(n, 0);
  EXPECT_EQ(n, std::numeric_limits<std::int64_t>::max());
}

TEST(ErrorModelSaturation, OverheadRidesTheInfinityRail) {
  SporadicErrors s{Duration::ns(1)};
  EXPECT_EQ(s.overhead(Duration::infinite() - Duration::ns(1), Duration::us(270), timing),
            Duration::infinite());
  BurstErrors b{Duration::ns(1), 1'000'000};
  const Duration oh = b.overhead(Duration::s(1'000'000), Duration::us(270), timing);
  EXPECT_GE(oh, Duration::zero());
}

}  // namespace
}  // namespace symcan

// Provenance differential suite: the acceptance bar for `symcan explain`
// is that a breakdown is not a narrative but a *proof* — its terms sum
// back to the bound exactly, and the embedded verdict is bit-identical
// to the plain analysis (same code path, iteration counts included),
// across every assumption preset.

#include "symcan/analysis/provenance.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct PresetParam {
  const char* name;
  CanRtaConfig (*make)();
};

CanRtaConfig default_assumptions() {
  CanRtaConfig cfg;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

CanRtaConfig sporadic_assumptions() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  cfg.errors = std::make_shared<SporadicErrors>(Duration::ms(40));
  return cfg;
}

CanRtaConfig offset_blind_assumptions() {
  CanRtaConfig cfg = worst_case_assumptions();
  cfg.use_offsets = false;
  return cfg;
}

class ProvenanceAcrossPresets : public ::testing::TestWithParam<PresetParam> {
 protected:
  static std::vector<KMatrix> workloads() {
    std::vector<KMatrix> out;
    for (const std::uint64_t seed : {3ull, 11ull}) {
      PowertrainConfig wl;
      wl.seed = seed;
      wl.message_count = 24;
      wl.ecu_count = 4;
      wl.target_utilization = 0.55;
      KMatrix km = generate_powertrain(wl);
      assume_jitter_fraction(km, 0.25, /*override_known=*/true);
      out.push_back(km);
      // An offset-scheduled sibling exercises the TtGroup shares.
      snap_periods(km, Duration::ms(1));
      assign_tt_offsets(km);
      out.push_back(std::move(km));
    }
    return out;
  }
};

TEST_P(ProvenanceAcrossPresets, SumOfPartsReproducesTheBoundExactly) {
  const CanRtaConfig cfg = GetParam().make();
  for (const KMatrix& km : workloads()) {
    for (std::size_t i = 0; i < km.size(); ++i) {
      const analysis::Provenance p = analysis::explain_message(km, cfg, i);
      EXPECT_TRUE(p.sum_check()) << p.name;
      if (p.result.diverged) continue;
      // Exact integer identity, not a tolerance: the critical window is a
      // fixed point, so re-summing its terms must reproduce it bit for bit.
      EXPECT_EQ(p.sum_of_parts(), p.result.wcrt) << p.name;
      Duration shares = Duration::zero();
      for (const auto& s : p.interference) shares += s.contribution;
      EXPECT_EQ(shares, p.interference_total) << p.name;
      EXPECT_EQ(p.bus_blocking + p.intra_node_blocking, p.result.blocking) << p.name;
    }
  }
}

TEST_P(ProvenanceAcrossPresets, ExplainedVerdictIsBitIdenticalToPlainAnalysis) {
  const CanRtaConfig cfg = GetParam().make();
  for (const KMatrix& km : workloads()) {
    const CanRta rta{km, cfg};
    for (std::size_t i = 0; i < km.size(); ++i) {
      const MessageResult plain = rta.analyze_message(i);
      const analysis::Provenance p = analysis::explain_message(km, cfg, i);
      const MessageResult& ex = p.result;
      EXPECT_EQ(ex.name, plain.name);
      EXPECT_EQ(ex.wcrt, plain.wcrt) << plain.name;
      EXPECT_EQ(ex.bcrt, plain.bcrt) << plain.name;
      EXPECT_EQ(ex.deadline, plain.deadline) << plain.name;
      EXPECT_EQ(ex.blocking, plain.blocking) << plain.name;
      EXPECT_EQ(ex.busy_period, plain.busy_period) << plain.name;
      EXPECT_EQ(ex.instances, plain.instances) << plain.name;
      // Identical iteration counts prove explain runs the same solver
      // path, not a lookalike.
      EXPECT_EQ(ex.fixedpoint_iterations, plain.fixedpoint_iterations) << plain.name;
      EXPECT_EQ(ex.schedulable, plain.schedulable) << plain.name;
      EXPECT_EQ(ex.diverged, plain.diverged) << plain.name;
    }
  }
}

TEST_P(ProvenanceAcrossPresets, SharesAreSortedAndTrajectoryEndsAtFixedPoint) {
  const CanRtaConfig cfg = GetParam().make();
  for (const KMatrix& km : workloads()) {
    for (std::size_t i = 0; i < km.size(); ++i) {
      const analysis::Provenance p = analysis::explain_message(km, cfg, i);
      if (p.result.diverged) continue;
      for (std::size_t k = 1; k < p.interference.size(); ++k)
        EXPECT_GE(p.interference[k - 1].contribution, p.interference[k].contribution) << p.name;
      ASSERT_FALSE(p.busy_iterates.empty()) << p.name;
      EXPECT_EQ(p.busy_iterates.back(), p.result.busy_period) << p.name;
      ASSERT_FALSE(p.window_iterates.empty()) << p.name;
      EXPECT_EQ(p.window_iterates.back(), p.critical_window) << p.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ProvenanceAcrossPresets,
    ::testing::Values(PresetParam{"best_case", &best_case_assumptions},
                      PresetParam{"worst_case", &worst_case_assumptions},
                      PresetParam{"default_period", &default_assumptions},
                      PresetParam{"sporadic_errors", &sporadic_assumptions},
                      PresetParam{"offset_blind", &offset_blind_assumptions}),
    [](const ::testing::TestParamInfo<PresetParam>& p) { return std::string(p.param.name); });

TEST(ProvenanceRendering, TextAndJsonCarryTheBreakdown) {
  PowertrainConfig wl;
  wl.seed = 5;
  wl.message_count = 16;
  wl.ecu_count = 4;
  wl.target_utilization = 0.45;
  const KMatrix km = generate_powertrain(wl);
  const CanRtaConfig cfg = worst_case_assumptions();
  // The lowest-priority message sees the richest breakdown.
  const std::size_t index = km.priority_order().back();
  const analysis::Provenance p = analysis::explain_message(km, cfg, index);

  const std::string text = analysis::provenance_to_text(p);
  EXPECT_NE(text.find("breakdown of the bound"), std::string::npos);
  EXPECT_NE(text.find("sum of parts == wcrt"), std::string::npos);
  EXPECT_NE(text.find(p.name), std::string::npos);

  const std::string json = analysis::provenance_to_json(p);
  EXPECT_NE(json.find("\"sum_check\":true"), std::string::npos);
  EXPECT_NE(json.find("\"interference\":["), std::string::npos);
  EXPECT_NE(json.find("\"busy_iterates_ns\":["), std::string::npos);
}

TEST(ProvenanceDiverged, OverloadedBusExplainsWithoutDecomposing) {
  PowertrainConfig wl;
  wl.seed = 9;
  wl.message_count = 24;
  wl.ecu_count = 4;
  wl.target_utilization = 0.55;
  KMatrix km = generate_powertrain(wl);
  // Saturate: shrink every period far below sustainable load.
  for (auto& m : km.messages()) m.period = Duration::us(500);
  const CanRtaConfig cfg = worst_case_assumptions();
  const std::size_t index = km.priority_order().back();
  const analysis::Provenance p = analysis::explain_message(km, cfg, index);
  ASSERT_TRUE(p.result.diverged);
  EXPECT_TRUE(p.sum_check());  // Trivially true; must not crash or lie.
  EXPECT_NE(analysis::provenance_to_text(p).find("DIVERGED"), std::string::npos);
  EXPECT_NE(analysis::provenance_to_json(p).find("\"diverged\":true"), std::string::npos);
}

TEST(FindMessage, ResolvesNamesAndRejectsUnknown) {
  PowertrainConfig wl;
  wl.message_count = 8;
  wl.ecu_count = 3;
  const KMatrix km = generate_powertrain(wl);
  for (std::size_t i = 0; i < km.size(); ++i)
    EXPECT_EQ(analysis::find_message(km, km.messages()[i].name), std::optional{i});
  EXPECT_FALSE(analysis::find_message(km, "no-such-message").has_value());
}

}  // namespace
}  // namespace symcan

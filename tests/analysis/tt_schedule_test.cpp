#include "symcan/analysis/tt_schedule.hpp"

#include <gtest/gtest.h>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

TtGroup::Member member(std::int64_t period_ms, std::int64_t offset_ms, std::int64_t cost_us,
                       std::int64_t jitter_us = 0) {
  return {Duration::ms(period_ms), Duration::ms(offset_ms), Duration::us(jitter_us),
          Duration::us(cost_us)};
}

TEST(TtGroup, SingleMemberMatchesPeriodicDemand) {
  const auto g = TtGroup::build({member(10, 0, 270)});
  ASSERT_TRUE(g);
  EXPECT_EQ(g->hyperperiod(), Duration::ms(10));
  EXPECT_EQ(g->interference(Duration::ms(10)), Duration::us(270));
  EXPECT_EQ(g->interference(Duration::ms(10) + Duration::ns(1)), Duration::us(540));
  EXPECT_EQ(g->interference(Duration::ms(95)), 10 * Duration::us(270));
  EXPECT_EQ(g->interference(Duration::zero()), Duration::zero());
}

TEST(TtGroup, SpreadOffsetsHalveTheSmallWindowDemand) {
  // Two 10 ms messages. Colliding offsets: any 1 ms window can catch
  // both. Spread by 5 ms: a 1 ms window catches at most one.
  const auto collide = TtGroup::build({member(10, 0, 270), member(10, 0, 270)});
  const auto spread = TtGroup::build({member(10, 0, 270), member(10, 5, 270)});
  ASSERT_TRUE(collide);
  ASSERT_TRUE(spread);
  EXPECT_EQ(collide->interference(Duration::ms(1)), Duration::us(540));
  EXPECT_EQ(spread->interference(Duration::ms(1)), Duration::us(270));
  // Over a full hyperperiod both schedules demand the same total.
  EXPECT_EQ(collide->interference(Duration::ms(10)), spread->interference(Duration::ms(10)));
  EXPECT_EQ(spread->interference(Duration::ms(10)), Duration::us(540));
  // One ns beyond the hyperperiod admits one extra release.
  EXPECT_EQ(spread->interference(Duration::ms(10) + Duration::ns(1)),
            Duration::us(540) + Duration::us(270));
}

TEST(TtGroup, MixedPeriodsUseHyperperiod) {
  const auto g = TtGroup::build({member(10, 0, 100), member(15, 5, 200)});
  ASSERT_TRUE(g);
  EXPECT_EQ(g->hyperperiod(), Duration::ms(30));
  EXPECT_EQ(g->release_count(), 5u);  // 3 of the 10ms + 2 of the 15ms
  // Whole hyperperiod: 3*100 + 2*200 = 700 us.
  EXPECT_EQ(g->interference(Duration::ms(30)), Duration::us(700));
  // One ns more admits the densest single instant again (t = 20 ms holds
  // releases of both members: 100 + 200).
  EXPECT_EQ(g->interference(Duration::ms(30) + Duration::ns(1)),
            Duration::us(700) + Duration::us(300));
}

TEST(TtGroup, JitterWidensTheWindow) {
  const auto crisp = TtGroup::build({member(10, 0, 270), member(10, 5, 270)});
  const auto jittery = TtGroup::build({member(10, 0, 270, 4500), member(10, 5, 270, 4500)});
  ASSERT_TRUE(crisp);
  ASSERT_TRUE(jittery);
  // With 4.5 ms jitter, a 1 ms window can catch both releases again.
  EXPECT_EQ(crisp->interference(Duration::ms(1)), Duration::us(270));
  EXPECT_EQ(jittery->interference(Duration::ms(1)), Duration::us(540));
}

TEST(TtGroup, BuildRejectsBadMembersAndHugeHyperperiods) {
  EXPECT_FALSE(TtGroup::build({}));
  EXPECT_FALSE(TtGroup::build({{Duration::ms(10), Duration::ms(12), Duration::zero(),
                                Duration::us(1)}}));  // offset >= period
  // Coprime large periods blow past the hyperperiod cap.
  EXPECT_FALSE(TtGroup::build({member(9999, 0, 1), member(10007, 0, 1)},
                              Duration::s(1)));
}

TEST(TtGroup, InterferenceIsMonotone) {
  const auto g = TtGroup::build({member(10, 0, 270), member(15, 5, 130), member(30, 2, 80)});
  ASSERT_TRUE(g);
  Duration prev = Duration::zero();
  for (Duration w = Duration::zero(); w <= Duration::ms(100); w += Duration::us(731)) {
    const Duration v = g->interference(w);
    EXPECT_GE(v, prev) << "at " << to_string(w);
    prev = v;
  }
}

TEST(TtGroup, NeverExceedsOffsetBlindBound) {
  const auto g = TtGroup::build({member(10, 0, 270), member(10, 3, 270), member(20, 7, 130)});
  ASSERT_TRUE(g);
  const EventModel m1 = EventModel::periodic(Duration::ms(10));
  const EventModel m3 = EventModel::periodic(Duration::ms(20));
  for (Duration w = Duration::us(100); w <= Duration::ms(60); w += Duration::us(913)) {
    const Duration blind =
        m1.eta_plus(w) * Duration::us(270) + m1.eta_plus(w) * Duration::us(270) +
        m3.eta_plus(w) * Duration::us(130);
    EXPECT_LE(g->interference(w), blind) << "at " << to_string(w);
  }
}

// ---------------------------------------------------------------------------
// Offset-aware RTA end-to-end.

KMatrix offset_matrix(bool with_offsets) {
  KMatrix km{"tt", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  EcuNode b;
  b.name = "B";
  km.add_node(b);
  // Three same-period messages from A; victim from B at lowest priority.
  for (int i = 0; i < 3; ++i) {
    CanMessage m;
    m.name = "tt" + std::to_string(i);
    m.id = static_cast<CanId>(0x10 + i);
    m.payload_bytes = 8;
    m.period = Duration::ms(6);
    if (with_offsets) m.tt_offset = Duration::ms(2 * i);
    m.sender = "A";
    m.receivers = {"B"};
    km.add_message(m);
  }
  CanMessage v;
  v.name = "victim";
  v.id = 0x100;
  v.payload_bytes = 8;
  v.period = Duration::ms(6);
  v.sender = "B";
  v.receivers = {"A"};
  km.add_message(v);
  return km;
}

TEST(OffsetRta, OffsetsReduceTheVictimsResponse) {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  const MessageResult blind = CanRta{offset_matrix(false), cfg}.analyze_message(3);
  const MessageResult aware = CanRta{offset_matrix(true), cfg}.analyze_message(3);
  // Offset-blind: blocked by nothing (lowest prio has no lp) but all
  // three TT frames ahead: 4*270 = 1080 us. Offset-aware: only one TT
  // frame can precede the victim within a short window.
  EXPECT_EQ(blind.wcrt, Duration::us(1080));
  EXPECT_LT(aware.wcrt, blind.wcrt);
  EXPECT_EQ(aware.wcrt, Duration::us(540));
}

TEST(OffsetRta, DisablingOffsetsRecoversBlindBound) {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  cfg.use_offsets = false;
  const MessageResult r = CanRta{offset_matrix(true), cfg}.analyze_message(3);
  EXPECT_EQ(r.wcrt, Duration::us(1080));
}

TEST(OffsetRta, AwareNeverExceedsBlindOnGeneratedMatrix) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  snap_periods(km, Duration::ms(1));  // grid-align so TT groups build
  assign_tt_offsets(km);
  assume_jitter_fraction(km, 0.15, true);
  CanRtaConfig aware = worst_case_assumptions();
  CanRtaConfig blind = worst_case_assumptions();
  blind.use_offsets = false;
  const BusResult ra = CanRta{km, aware}.analyze();
  const BusResult rb = CanRta{km, blind}.analyze();
  for (std::size_t i = 0; i < ra.messages.size(); ++i)
    EXPECT_LE(ra.messages[i].wcrt, rb.messages[i].wcrt) << ra.messages[i].name;
  EXPECT_LE(ra.miss_count(), rb.miss_count());
}

TEST(OffsetRta, SimulationRespectsOffsetAwareBound) {
  // The oracle, offset edition: simulated responses stay below the
  // offset-aware bound when the simulator schedules by the same offsets.
  KMatrix km = offset_matrix(true);
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  const BusResult bound = CanRta{km, cfg}.analyze();

  SimConfig sim;
  sim.duration = Duration::s(5);
  sim.seed = 21;
  sim.stuffing = StuffingMode::kRandom;
  const SimResult obs = simulate(km, sim);
  for (std::size_t i = 0; i < km.size(); ++i)
    EXPECT_LE(obs.messages[i].wcrt_observed, bound.messages[i].wcrt) << km.messages()[i].name;
}

TEST(AssignTtOffsets, CoversAllMessagesAndValidates) {
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  const std::size_t n = assign_tt_offsets(km);
  EXPECT_EQ(n, km.size());
  for (const auto& m : km.messages()) {
    ASSERT_TRUE(m.tt_offset.has_value());
    EXPECT_GE(*m.tt_offset, Duration::zero());
    EXPECT_LT(*m.tt_offset, m.period);
  }
  EXPECT_THROW(assign_tt_offsets(km, Duration::zero()), std::invalid_argument);
}

TEST(AssignTtOffsets, SpreadsSameSenderSamePeriodMessages) {
  KMatrix km{"spread", BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  for (int i = 0; i < 4; ++i) {
    CanMessage m;
    m.name = "m" + std::to_string(i);
    m.id = static_cast<CanId>(0x10 + i);
    m.period = Duration::ms(10);
    m.sender = "A";
    m.receivers = {"A"};
    km.add_message(m);
  }
  assign_tt_offsets(km, Duration::ms(1));
  std::set<std::int64_t> offsets;
  for (const auto& m : km.messages()) offsets.insert(m.tt_offset->count_ns());
  EXPECT_EQ(offsets.size(), 4u);  // all distinct
}

TEST(KMatrixIoOffsets, OffsetSurvivesCsvRoundTrip) {
  KMatrix km = offset_matrix(true);
  const KMatrix back = kmatrix_from_csv(kmatrix_to_csv(km));
  for (std::size_t i = 0; i < km.size(); ++i) {
    ASSERT_EQ(km.messages()[i].tt_offset.has_value(), back.messages()[i].tt_offset.has_value());
    if (km.messages()[i].tt_offset) {
      EXPECT_EQ(*km.messages()[i].tt_offset, *back.messages()[i].tt_offset);
    }
  }
}

TEST(CanMessageOffsets, ValidateRejectsOffsetBeyondPeriod) {
  CanMessage m;
  m.name = "x";
  m.id = 1;
  m.period = Duration::ms(10);
  m.sender = "A";
  m.tt_offset = Duration::ms(10);
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.tt_offset = Duration::ms(9);
  EXPECT_NO_THROW(m.validate());
}

}  // namespace
}  // namespace symcan

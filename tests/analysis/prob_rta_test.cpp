// Probabilistic RTA: PMF machinery invariants, the degenerate
// differential gate (all-1e6 ppm reproduces CanRta::analyze_message bit
// for bit across the assumption presets), the upper-support-point
// property, and the warm rung-ladder cache in IncrementalRta.

#include "symcan/analysis/prob_rta.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

using analysis::analyze_message_prob;
using analysis::explain_message_prob;
using analysis::mix_ladder;
using analysis::ProbProvenance;
using analysis::RungLadder;
using analysis::solve_rung_ladder;

// ---------------------------------------------------------------- Pmf --

TEST(Pmf, PointIsDegenerateUnitMass) {
  const Pmf p = Pmf::point(Duration::us(100));
  ASSERT_EQ(p.atoms().size(), 1u);
  EXPECT_TRUE(p.degenerate());
  EXPECT_EQ(p.atoms()[0].value, Duration::us(100));
  EXPECT_EQ(p.atoms()[0].weight, Pmf::kOne);
  EXPECT_EQ(p.min_value(), Duration::us(100));
  EXPECT_EQ(p.max_value(), Duration::us(100));
}

TEST(Pmf, TwoPointSplitsMassExactly) {
  const std::uint64_t high = Pmf::kOne / 3;
  const Pmf p = Pmf::two_point(Duration::us(10), Duration::us(50), high);
  ASSERT_EQ(p.atoms().size(), 2u);
  EXPECT_EQ(p.atoms()[0].value, Duration::us(10));
  EXPECT_EQ(p.atoms()[1].value, Duration::us(50));
  EXPECT_EQ(p.atoms()[0].weight + p.atoms()[1].weight, Pmf::kOne);
  EXPECT_EQ(p.atoms()[1].weight, high);
}

TEST(Pmf, TwoPointCollapsesDegenerateWeights) {
  EXPECT_TRUE(Pmf::two_point(Duration::us(10), Duration::us(50), 0).degenerate());
  EXPECT_EQ(Pmf::two_point(Duration::us(10), Duration::us(50), 0).max_value(), Duration::us(10));
  EXPECT_TRUE(Pmf::two_point(Duration::us(10), Duration::us(50), Pmf::kOne).degenerate());
  EXPECT_EQ(Pmf::two_point(Duration::us(10), Duration::us(50), Pmf::kOne).min_value(),
            Duration::us(50));
}

TEST(Pmf, FromAtomsMergesDuplicatesAndValidates) {
  const Pmf p = Pmf::from_atoms({{Duration::us(5), Pmf::kOne / 4},
                                 {Duration::us(1), Pmf::kOne / 2},
                                 {Duration::us(5), Pmf::kOne / 4}});
  ASSERT_EQ(p.atoms().size(), 2u);
  EXPECT_EQ(p.atoms()[0].value, Duration::us(1));
  EXPECT_EQ(p.atoms()[1].weight, Pmf::kOne / 2);
  // A sum that is not exactly kOne violates the representation invariant.
  EXPECT_THROW(Pmf::from_atoms({{Duration::us(1), Pmf::kOne - 1}}), std::logic_error);
}

TEST(Pmf, ConvolveOfPointsIsExactShift) {
  const Pmf p = convolve(Pmf::point(Duration::us(30)), Pmf::point(Duration::us(12)));
  EXPECT_TRUE(p.degenerate());
  EXPECT_EQ(p.max_value(), Duration::us(42));
  EXPECT_EQ(p.atoms()[0].weight, Pmf::kOne);
}

TEST(Pmf, ConvolvePreservesExactUnitMass) {
  // Odd weights force floor-division residue; the invariant demands the
  // residue land back in the distribution (on the max-value atom).
  const Pmf a = Pmf::two_point(Duration::us(1), Duration::us(7), Pmf::kOne / 3);
  const Pmf b = Pmf::two_point(Duration::us(2), Duration::us(5), Pmf::kOne / 7 + 1);
  const Pmf c = convolve(a, b);
  std::uint64_t total = 0;
  for (const auto& atom : c.atoms()) total += atom.weight;
  EXPECT_EQ(total, Pmf::kOne);
  EXPECT_EQ(c.min_value(), Duration::us(3));
  EXPECT_EQ(c.max_value(), Duration::us(12));
  c.validate();
}

TEST(Pmf, ConvolveResidueIsConservative) {
  // The residue-to-top rounding must never *shrink* any tail: the
  // convolved CCDF dominates the exact rational CCDF at every point.
  const Pmf a = Pmf::two_point(Duration::us(0), Duration::us(10), Pmf::kOne / 3);
  const Pmf b = Pmf::two_point(Duration::us(0), Duration::us(10), Pmf::kOne / 3);
  const Pmf c = convolve(a, b);
  // Exact P(sum >= 20) = (1/3)^2 = kOne/9 (up to fixed-point input
  // rounding); the computed tail must not be below the product of the
  // stored weights divided by kOne, rounded down.
  // (kOne/3)^2 fits in 64 bits, so the exact floor is computable directly.
  const std::uint64_t exact_floor = ((Pmf::kOne / 3) * (Pmf::kOne / 3)) >> 32;
  EXPECT_GE(c.mass_above(Duration::us(10)), exact_floor);
}

TEST(Pmf, MassAboveIsTheTail) {
  const Pmf p = Pmf::two_point(Duration::us(10), Duration::us(50), Pmf::kOne / 4);
  EXPECT_EQ(p.mass_above(Duration::us(50)), 0u);
  EXPECT_EQ(p.mass_above(Duration::us(49)), Pmf::kOne / 4);
  EXPECT_EQ(p.mass_above(Duration::us(10)), Pmf::kOne / 4);
  EXPECT_EQ(p.mass_above(Duration::us(9)), Pmf::kOne);
}

TEST(Pmf, QuantileWalksTheCdf) {
  const Pmf p = Pmf::two_point(Duration::us(10), Duration::us(50), Pmf::kOne / 4);
  EXPECT_EQ(p.quantile(0), Duration::us(10));
  EXPECT_EQ(p.quantile(Pmf::kOne / 2), Duration::us(10));
  EXPECT_EQ(p.quantile(Pmf::kOne), Duration::us(50));
}

TEST(Pmf, ClampedMinFoldsLowMass) {
  const Pmf p = Pmf::two_point(Duration::us(10), Duration::us(50), Pmf::kOne / 4);
  const Pmf c = p.clamped_min(Duration::us(20));
  ASSERT_EQ(c.atoms().size(), 2u);
  EXPECT_EQ(c.min_value(), Duration::us(20));
  EXPECT_EQ(c.atoms()[0].weight, Pmf::kOne - Pmf::kOne / 4);
  // Clamping below the support is the identity.
  EXPECT_EQ(p.clamped_min(Duration::us(1)).atoms(), p.atoms());
}

TEST(Pmf, PpmConversionIsExactAtRailsAndRoundsUp) {
  EXPECT_EQ(Pmf::weight_from_ppm(0), 0u);
  EXPECT_EQ(Pmf::weight_from_ppm(1'000'000), Pmf::kOne);
  EXPECT_EQ(Pmf::ppm_from_weight(0), 0);
  EXPECT_EQ(Pmf::ppm_from_weight(Pmf::kOne), 1'000'000);
  for (const std::int64_t ppm : {1, 13, 500'000, 999'999}) {
    // Round-trip never understates: displayed ppm >= requested ppm.
    EXPECT_GE(Pmf::ppm_from_weight(Pmf::weight_from_ppm(ppm)), ppm) << ppm;
    EXPECT_LE(Pmf::ppm_from_weight(Pmf::weight_from_ppm(ppm)), ppm + 1) << ppm;
  }
}

TEST(ProbConfig, ValidatesItsRanges) {
  ProbRtaConfig cfg;
  analysis::validate_prob_config(cfg);  // Defaults are valid.
  cfg.fault_ppm = 1'000'001;
  EXPECT_THROW(analysis::validate_prob_config(cfg), std::invalid_argument);
  cfg.fault_ppm = -1;
  EXPECT_THROW(analysis::validate_prob_config(cfg), std::invalid_argument);
  cfg.fault_ppm = 0;
  cfg.max_rungs = 0;
  EXPECT_THROW(analysis::validate_prob_config(cfg), std::invalid_argument);
  cfg.max_rungs = 4097;
  EXPECT_THROW(analysis::validate_prob_config(cfg), std::invalid_argument);
}

// ------------------------------------------------ differential battery --

/// The five canonical assumption presets the acceptance gate names.
std::vector<std::pair<std::string, CanRtaConfig>> presets() {
  std::vector<std::pair<std::string, CanRtaConfig>> out;
  CanRtaConfig def;
  def.worst_case_stuffing = true;
  def.deadline_override = DeadlinePolicy::kPeriod;
  out.emplace_back("default", def);
  CanRtaConfig no_off = def;
  no_off.use_offsets = false;
  out.emplace_back("no_offsets", no_off);
  out.emplace_back("best_case", best_case_assumptions());
  out.emplace_back("worst_case", worst_case_assumptions());
  CanRtaConfig wc_nq = worst_case_assumptions();
  wc_nq.model_controller_queues = false;
  out.emplace_back("worst_case_no_queues", wc_nq);
  return out;
}

KMatrix seeded_matrix(std::uint64_t seed, int messages, double util) {
  PowertrainConfig wl;
  wl.seed = seed;
  wl.message_count = messages;
  wl.ecu_count = 3 + static_cast<int>(seed % 4);
  wl.target_utilization = util;
  return generate_powertrain(wl);
}

void expect_same_result(const MessageResult& p, const MessageResult& d, const std::string& tag) {
  EXPECT_EQ(p.name, d.name) << tag;
  EXPECT_EQ(p.id, d.id) << tag;
  EXPECT_EQ(p.wcrt, d.wcrt) << tag;
  EXPECT_EQ(p.bcrt, d.bcrt) << tag;
  EXPECT_EQ(p.deadline, d.deadline) << tag;
  EXPECT_EQ(p.blocking, d.blocking) << tag;
  EXPECT_EQ(p.busy_period, d.busy_period) << tag;
  EXPECT_EQ(p.instances, d.instances) << tag;
  EXPECT_EQ(p.fixedpoint_iterations, d.fixedpoint_iterations) << tag;
  EXPECT_EQ(p.schedulable, d.schedulable) << tag;
  EXPECT_EQ(p.diverged, d.diverged) << tag;
}

TEST(ProbDifferential, DegenerateInputsReproduceDeterministicRtaAcrossPresets) {
  for (const std::uint64_t seed : {11u, 37u, 64u}) {
    const KMatrix km = seeded_matrix(seed, 20, 0.55);
    for (const auto& [name, rta] : presets()) {
      ProbRtaConfig cfg;
      cfg.rta = rta;  // All ppm at the degenerate 1'000'000 defaults.
      const ProbBusResult prob = analyze_prob(km, cfg);
      const BusResult det = CanRta{km, rta}.analyze();
      ASSERT_EQ(prob.messages.size(), det.messages.size());
      EXPECT_EQ(prob.utilization, det.utilization) << name;
      for (std::size_t i = 0; i < det.messages.size(); ++i) {
        const std::string tag =
            name + "/" + det.messages[i].name + " seed=" + std::to_string(seed);
        expect_same_result(prob.messages[i].det, det.messages[i], tag);
        // The distribution collapses to an exact point mass at the WCRT.
        if (!det.messages[i].diverged) {
          EXPECT_TRUE(prob.messages[i].response.degenerate()) << tag;
          EXPECT_EQ(prob.messages[i].response.max_value(), det.messages[i].wcrt) << tag;
        }
        // Miss probability agrees with the binary verdict: certain miss
        // when unschedulable, zero otherwise.
        EXPECT_EQ(prob.messages[i].miss_weight,
                  det.messages[i].schedulable ? 0u : Pmf::kOne)
            << tag;
      }
    }
  }
}

TEST(ProbDifferential, WcrtIsTheUpperSupportPoint) {
  // Non-degenerate probabilities: the distribution's top atom must still
  // be exactly the deterministic WCRT, and its bottom must not undercut
  // the best-case response.
  const KMatrix km = seeded_matrix(23, 24, 0.55);
  for (const auto& [name, rta] : presets()) {
    ProbRtaConfig cfg;
    cfg.rta = rta;
    cfg.fault_ppm = 400'000;
    cfg.stuff_ppm = 800'000;
    cfg.jitter_ppm = 600'000;
    const ProbBusResult prob = analyze_prob(km, cfg);
    const BusResult det = CanRta{km, rta}.analyze();
    for (std::size_t i = 0; i < det.messages.size(); ++i) {
      if (det.messages[i].diverged) continue;
      const std::string tag = name + "/" + det.messages[i].name;
      EXPECT_EQ(prob.messages[i].response.max_value(), det.messages[i].wcrt) << tag;
      EXPECT_GE(prob.messages[i].response.min_value(), det.messages[i].bcrt) << tag;
    }
  }
}

TEST(ProbDifferential, MissProbabilityMonotoneInFaultProbability) {
  // More probable faults can only shift mass upward. Fixed-point residue
  // allows a tiny non-monotonicity; the documented tolerance is
  // ~8*(k+1)^2 ulps of 2^-32 per rung count k.
  const KMatrix km = seeded_matrix(77, 20, 0.60);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  std::vector<std::uint64_t> prev(km.size(), 0);
  for (const std::int64_t ppm : {0, 1'000, 50'000, 250'000, 600'000, 1'000'000}) {
    cfg.fault_ppm = ppm;
    const ProbBusResult res = analyze_prob(km, cfg);
    for (std::size_t i = 0; i < res.messages.size(); ++i) {
      const std::size_t k = res.messages[i].rungs.size();
      const std::uint64_t tol = 8 * static_cast<std::uint64_t>((k + 1) * (k + 1));
      EXPECT_GE(res.messages[i].miss_weight + tol, prev[i])
          << res.messages[i].det.name << " at " << ppm << " ppm";
      prev[i] = res.messages[i].miss_weight;
    }
  }
}

TEST(ProbDifferential, MixLadderIsPureFunctionOfLadder) {
  // The sweep contract: re-mixing a cached ladder must equal the full
  // per-message analysis, atom for atom.
  const KMatrix km = seeded_matrix(51, 16, 0.45);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 123'456;
  cfg.stuff_ppm = 777'777;
  for (std::size_t i = 0; i < km.size(); ++i) {
    const RungLadder ladder =
        solve_rung_ladder(analysis::build_message_context(km, cfg.rta, i), cfg.max_rungs);
    const ProbMessageResult mixed = mix_ladder(ladder, cfg);
    const ProbMessageResult direct = analyze_message_prob(km, cfg, i);
    EXPECT_EQ(mixed.response.atoms(), direct.response.atoms());
    EXPECT_EQ(mixed.miss_weight, direct.miss_weight);
    EXPECT_EQ(mixed.rungs, direct.rungs);
  }
}

TEST(ProbDifferential, ExplainMatchesAnalyzeAndRecordsRungs) {
  const KMatrix km = seeded_matrix(89, 16, 0.50);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 300'000;
  const ProbProvenance p = explain_message_prob(km, cfg, km.size() - 1);
  const ProbMessageResult direct = analyze_message_prob(km, cfg, km.size() - 1);
  expect_same_result(p.prob.det, direct.det, "explain");
  EXPECT_EQ(p.prob.miss_weight, direct.miss_weight);
  EXPECT_EQ(p.prob.response.atoms(), direct.response.atoms());
  ASSERT_EQ(p.rungs.size(), direct.rungs.size());
  for (std::size_t r = 0; r < p.rungs.size(); ++r) {
    EXPECT_EQ(p.rungs[r].wcrt, direct.rungs[r]);
    EXPECT_EQ(p.rungs[r].faults, static_cast<std::int64_t>(r));
    if (r > 0) EXPECT_GE(p.rungs[r].wcrt, p.rungs[r - 1].wcrt);
  }
  const std::string text = analysis::prob_provenance_to_text(p);
  EXPECT_NE(text.find(p.prob.det.name), std::string::npos);
  EXPECT_NE(text.find("rung"), std::string::npos);
}

// ------------------------------------------------ warm rung-ladder cache --

TEST(ProbCache, RepeatAnalysisHitsAndStaysBitIdentical) {
  const KMatrix km = seeded_matrix(101, 24, 0.60);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 200'000;
  analysis::IncrementalRta rta;
  const ProbBusResult cold = rta.analyze_prob(km, cfg);
  EXPECT_EQ(rta.prob_stats().hits, 0);
  EXPECT_GT(rta.prob_stats().misses, 0);
  const ProbBusResult warm = rta.analyze_prob(km, cfg);
  EXPECT_GT(rta.prob_stats().hits, 0);
  const ProbBusResult fresh = analyze_prob(km, cfg);
  ASSERT_EQ(cold.messages.size(), fresh.messages.size());
  for (std::size_t i = 0; i < fresh.messages.size(); ++i) {
    expect_same_result(warm.messages[i].det, fresh.messages[i].det, "warm");
    expect_same_result(cold.messages[i].det, fresh.messages[i].det, "cold");
    EXPECT_EQ(warm.messages[i].response.atoms(), fresh.messages[i].response.atoms());
    EXPECT_EQ(cold.messages[i].response.atoms(), fresh.messages[i].response.atoms());
    EXPECT_EQ(warm.messages[i].miss_weight, fresh.messages[i].miss_weight);
  }
}

TEST(ProbCache, FaultProbabilitySweepReusesEveryLadder) {
  // The sweep pattern: same context, changing fault_ppm. Ladders depend
  // only on the context and max_rungs, so after the first point the
  // solver never runs again.
  const KMatrix km = seeded_matrix(37, 20, 0.55);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  analysis::IncrementalRta rta;
  cfg.fault_ppm = 1'000'000;
  rta.analyze_prob(km, cfg);
  const auto misses_after_first = rta.prob_stats().misses;
  for (const std::int64_t ppm : {500'000, 100'000, 10'000, 1'000}) {
    cfg.fault_ppm = ppm;
    const ProbBusResult cached = rta.analyze_prob(km, cfg);
    const ProbBusResult fresh = analyze_prob(km, cfg);
    for (std::size_t i = 0; i < fresh.messages.size(); ++i) {
      EXPECT_EQ(cached.messages[i].response.atoms(), fresh.messages[i].response.atoms());
      EXPECT_EQ(cached.messages[i].miss_weight, fresh.messages[i].miss_weight);
    }
  }
  EXPECT_EQ(rta.prob_stats().misses, misses_after_first)
      << "a fault-probability sweep must not re-solve any ladder";
}

TEST(ProbCache, PerMessagePathMatchesBusPath) {
  const KMatrix km = seeded_matrix(64, 16, 0.50);
  ProbRtaConfig cfg;
  cfg.rta = best_case_assumptions();
  cfg.jitter_ppm = 500'000;
  analysis::IncrementalRta rta;
  const ProbBusResult bus = rta.analyze_prob(km, cfg);
  for (std::size_t i = 0; i < km.size(); ++i) {
    const ProbMessageResult one = rta.analyze_message_prob(km, cfg, i);
    EXPECT_EQ(one.response.atoms(), bus.messages[i].response.atoms());
    EXPECT_EQ(one.miss_weight, bus.messages[i].miss_weight);
    expect_same_result(one.det, bus.messages[i].det, "per-message");
  }
}

}  // namespace
}  // namespace symcan

#include "symcan/analysis/load.hpp"

#include <gtest/gtest.h>

namespace symcan {
namespace {

/// Build a matrix whose per-node raw traffic reproduces Figure 1 of the
/// paper: four ECUs producing 100/50/20/10 kbit/s on a 500 kbit/s CAN,
/// for a total of 180 kbit/s = 36 % utilization. We use unstuffed 8-byte
/// frames (111 bits) and pick periods so each node's bit rate is exact.
KMatrix figure1_matrix() {
  KMatrix km{"fig1", BitTiming{500'000}};
  const struct {
    const char* name;
    double kbps;
  } nodes[] = {{"ECU1", 100}, {"ECU2", 50}, {"ECU3", 20}, {"ECU4", 10}};
  for (const auto& n : nodes) {
    EcuNode node;
    node.name = n.name;
    km.add_node(node);
  }
  CanId id = 0x100;
  for (const auto& n : nodes) {
    // One 111-bit message per node; period = 111 bits / rate.
    CanMessage m;
    m.name = std::string(n.name) + "_tx";
    m.id = id++;
    m.payload_bytes = 8;
    const double period_s = 111.0 / (n.kbps * 1000.0);
    m.period = Duration::ns(static_cast<std::int64_t>(period_s * 1e9));
    m.sender = n.name;
    m.receivers = {"ECU1"};
    km.add_message(m);
  }
  return km;
}

TEST(LoadAnalysis, Figure1TotalsAndUtilization) {
  const LoadReport r = analyze_load(figure1_matrix(), /*worst_case_stuffing=*/false);
  EXPECT_NEAR(r.total_traffic_bps, 180'000, 100);
  EXPECT_EQ(r.bandwidth_bps, 500'000);
  EXPECT_NEAR(r.utilization, 0.36, 0.001);
}

TEST(LoadAnalysis, PerNodeBreakdownSortedDescending) {
  const LoadReport r = analyze_load(figure1_matrix(), false);
  ASSERT_EQ(r.by_node.size(), 4u);
  EXPECT_EQ(r.by_node[0].node, "ECU1");
  EXPECT_NEAR(r.by_node[0].traffic_bps, 100'000, 100);
  EXPECT_NEAR(r.by_node[0].share, 100.0 / 180.0, 0.001);
  EXPECT_EQ(r.by_node[3].node, "ECU4");
  for (std::size_t i = 1; i < r.by_node.size(); ++i)
    EXPECT_GE(r.by_node[i - 1].traffic_bps, r.by_node[i].traffic_bps);
}

TEST(LoadAnalysis, WorstCaseStuffingInflatesLoad) {
  const KMatrix km = figure1_matrix();
  EXPECT_GT(analyze_load(km, true).utilization, analyze_load(km, false).utilization);
}

TEST(LoadAnalysis, LoadLimitVerdicts) {
  const LoadReport r = analyze_load(figure1_matrix(), false);
  // The two OEM camps of Section 3.1: 36 % passes both 40 % and 60 %.
  EXPECT_TRUE(within_load_limit(r, 0.40));
  EXPECT_TRUE(within_load_limit(r, 0.60));
  EXPECT_FALSE(within_load_limit(r, 0.30));
}

TEST(LoadAnalysis, EmptyMatrixIsZeroLoad) {
  KMatrix km{"empty", BitTiming{500'000}};
  EcuNode n;
  n.name = "A";
  km.add_node(n);
  const LoadReport r = analyze_load(km, false);
  EXPECT_EQ(r.total_traffic_bps, 0);
  EXPECT_EQ(r.utilization, 0);
}

}  // namespace
}  // namespace symcan

#include "symcan/analysis/can_rta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

/// Three 8-byte messages on one fullCAN node, 500 kbit/s, worst-case
/// stuffing: every frame takes exactly 270 us. Small enough to verify by
/// hand against the Davis et al. equations.
KMatrix three_messages(Duration t1 = Duration::ms(2), Duration t2 = Duration::us(2500),
                       Duration t3 = Duration::us(3500)) {
  KMatrix km{"hand", BitTiming{500'000}};
  EcuNode n;
  n.name = "N";
  km.add_node(n);
  EcuNode m;
  m.name = "M";
  km.add_node(m);
  const struct {
    const char* name;
    CanId id;
    Duration period;
    const char* sender;
  } rows[] = {{"m1", 1, t1, "N"}, {"m2", 2, t2, "M"}, {"m3", 3, t3, "N"}};
  for (const auto& r : rows) {
    CanMessage msg;
    msg.name = r.name;
    msg.id = r.id;
    msg.payload_bytes = 8;
    msg.period = r.period;
    msg.sender = r.sender;
    msg.receivers = {"N"};
    km.add_message(msg);
  }
  return km;
}

CanRtaConfig plain_config() {
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

TEST(CanRta, HandComputedResponseTimes) {
  const CanRta rta{three_messages(), plain_config()};
  const BusResult res = rta.analyze();
  ASSERT_EQ(res.messages.size(), 3u);
  // m1: blocked by one lower-priority frame (270 us), then transmits.
  EXPECT_EQ(res.messages[0].wcrt, Duration::us(540));
  EXPECT_EQ(res.messages[0].blocking, Duration::us(270));
  // m2: blocking 270 + one m1 interference + own frame = 810 us.
  EXPECT_EQ(res.messages[1].wcrt, Duration::us(810));
  // m3: lowest priority, no blocking, two higher-priority frames first.
  EXPECT_EQ(res.messages[2].wcrt, Duration::us(810));
  EXPECT_EQ(res.messages[2].blocking, Duration::zero());
  for (const auto& m : res.messages) {
    EXPECT_TRUE(m.schedulable);
    EXPECT_FALSE(m.diverged);
  }
}

TEST(CanRta, BestCaseResponseIsUnstuffedFrameTime) {
  const CanRta rta{three_messages(), plain_config()};
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(rta.analyze_message(i).bcrt, Duration::us(222));
}

TEST(CanRta, UnstuffedConfigShrinksResponses) {
  CanRtaConfig cfg = plain_config();
  cfg.worst_case_stuffing = false;
  const BusResult res = CanRta{three_messages(), cfg}.analyze();
  // All frame times 222 us: m1 = 444, m2/m3 = 666.
  EXPECT_EQ(res.messages[0].wcrt, Duration::us(444));
  EXPECT_EQ(res.messages[1].wcrt, Duration::us(666));
  EXPECT_EQ(res.messages[2].wcrt, Duration::us(666));
}

TEST(CanRta, SporadicErrorInflatesByRecoveryPlusRetransmission) {
  CanRtaConfig cfg = plain_config();
  cfg.errors = std::make_shared<SporadicErrors>(Duration::ms(10));
  const MessageResult m1 = CanRta{three_messages(), cfg}.analyze_message(0);
  // One fault in the short busy window: +31*2us recovery +270us retx.
  EXPECT_EQ(m1.wcrt, Duration::us(540 + 332));
}

TEST(CanRta, JitterPropagatesToDeadlineUnderMinReArrival) {
  KMatrix km = three_messages();
  km.messages()[0].jitter = Duration::us(500);
  CanRtaConfig cfg = plain_config();
  cfg.deadline_override = DeadlinePolicy::kMinReArrival;
  const MessageResult m1 = CanRta{km, cfg}.analyze_message(0);
  EXPECT_EQ(m1.deadline, Duration::ms(2) - Duration::us(500));
}

TEST(CanRta, HigherPriorityJitterIncreasesInterference) {
  // m1 jitter large enough that two m1 instances can hit m3's window.
  KMatrix km = three_messages(Duration::ms(1), Duration::ms(10), Duration::ms(10));
  KMatrix jittered = km;
  jittered.messages()[0].jitter = Duration::us(900);
  const CanRtaConfig cfg = plain_config();
  const Duration base = CanRta{km, cfg}.analyze_message(2).wcrt;
  const Duration with_jitter = CanRta{jittered, cfg}.analyze_message(2).wcrt;
  EXPECT_GT(with_jitter, base);
}

TEST(CanRta, OverloadDiverges) {
  // Three messages with 270 us frames every 500 us: utilization > 1.
  KMatrix km = three_messages(Duration::us(500), Duration::us(500), Duration::us(500));
  CanRtaConfig cfg = plain_config();
  cfg.horizon = Duration::ms(100);
  const BusResult res = CanRta{km, cfg}.analyze();
  EXPECT_GT(res.utilization, 1.0);
  // The lowest-priority message certainly diverges.
  EXPECT_TRUE(res.messages[2].diverged);
  EXPECT_FALSE(res.messages[2].schedulable);
  EXPECT_TRUE(res.messages[2].wcrt.is_infinite());
  EXPECT_GT(res.miss_count(), 0u);
}

TEST(CanRta, BasicCanIntraNodeBlockingCharged) {
  KMatrix km = three_messages();
  // Make node N basicCAN with 2 buffers: m1 shares N with lower-priority
  // m3, so m1 is additionally blocked by m3's committed frame.
  KMatrix basic{"hand2", BitTiming{500'000}};
  for (auto node : km.nodes()) {
    if (node.name == "N") {
      node.controller = ControllerType::kBasicCan;
      node.tx_buffers = 2;
    }
    basic.add_node(node);
  }
  for (const auto& m : km.messages()) basic.add_message(m);

  const MessageResult with_queue = CanRta{basic, plain_config()}.analyze_message(0);
  const MessageResult without = CanRta{km, plain_config()}.analyze_message(0);
  // FIFO degradation: m1 competes at m3's rank while committed behind it.
  // Blocking becomes the committed m3 frame (no frame sits below m3's
  // rank, so no bus blocking), and m2 now interferes: the response grows
  // by one full frame versus the fullCAN node.
  EXPECT_EQ(with_queue.blocking, Duration::us(270));
  EXPECT_EQ(with_queue.wcrt, without.wcrt + Duration::us(270));
  EXPECT_EQ(with_queue.wcrt, Duration::us(810));

  CanRtaConfig no_queues = plain_config();
  no_queues.model_controller_queues = false;
  const CanRta rta_no_queues{basic, no_queues};
  EXPECT_EQ(rta_no_queues.analyze_message(0).blocking, without.blocking);
}

TEST(CanRta, MissFractionCountsMisses) {
  KMatrix km = three_messages(Duration::ms(2), Duration::us(2500), Duration::us(700));
  // m3 deadline 700 us < its 810 us response: one miss.
  const BusResult res = CanRta{km, plain_config()}.analyze();
  EXPECT_EQ(res.miss_count(), 1u);
  EXPECT_NEAR(res.miss_fraction(), 1.0 / 3.0, 1e-9);
  EXPECT_FALSE(res.all_schedulable());
  EXPECT_LT(res.messages[2].slack(), Duration::zero());
}

TEST(CanRta, ResponseJitterIsWcrtMinusBcrt) {
  const MessageResult m = CanRta{three_messages(), plain_config()}.analyze_message(1);
  EXPECT_EQ(m.response_jitter(), m.wcrt - m.bcrt);
}

TEST(CanRta, RejectsNullErrorModel) {
  CanRtaConfig cfg = plain_config();
  cfg.errors = nullptr;
  EXPECT_THROW(CanRta(three_messages(), cfg), std::invalid_argument);
}

TEST(CanRta, RejectsBadIndex) {
  const CanRta rta{three_messages(), plain_config()};
  EXPECT_THROW(rta.analyze_message(3), std::out_of_range);
}

TEST(CanRta, BurstyActivationMultipliesInterference) {
  KMatrix km = three_messages(Duration::ms(1), Duration::ms(10), Duration::ms(10));
  // m1 becomes bursty: J = 2.5 periods, bursts of up to 4 frames.
  km.messages()[0].jitter = Duration::us(2500);
  km.messages()[0].min_distance = Duration::us(300);
  const MessageResult m3 = CanRta{km, plain_config()}.analyze_message(2);
  // At least 3 extra m1 frames compared to the jitter-free case (810 us).
  EXPECT_GE(m3.wcrt, Duration::us(810) + 2 * Duration::us(270));
}

// ---------------------------------------------------------------------------
// Monotonicity properties on the generated power-train matrix.

class RtaMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(RtaMonotonicity, ResponseMonotoneInUniformJitter) {
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  const double f = GetParam();
  KMatrix lo = km, hi = km;
  assume_jitter_fraction(lo, f, true);
  assume_jitter_fraction(hi, f + 0.10, true);
  const BusResult rlo = CanRta{lo, best_case_assumptions()}.analyze();
  const BusResult rhi = CanRta{hi, best_case_assumptions()}.analyze();
  for (std::size_t i = 0; i < rlo.messages.size(); ++i)
    EXPECT_GE(rhi.messages[i].wcrt, rlo.messages[i].wcrt) << rlo.messages[i].name;
}

TEST_P(RtaMonotonicity, ErrorsOnlyIncreaseResponses) {
  const KMatrix base = generate_powertrain(PowertrainConfig::case_study());
  KMatrix km = base;
  assume_jitter_fraction(km, GetParam(), true);
  CanRtaConfig clean = best_case_assumptions();
  CanRtaConfig dirty = clean;
  dirty.errors = std::make_shared<SporadicErrors>(Duration::ms(20));
  const BusResult rc = CanRta{km, clean}.analyze();
  const BusResult rd = CanRta{km, dirty}.analyze();
  for (std::size_t i = 0; i < rc.messages.size(); ++i)
    EXPECT_GE(rd.messages[i].wcrt, rc.messages[i].wcrt);
}

INSTANTIATE_TEST_SUITE_P(JitterGrid, RtaMonotonicity, ::testing::Values(0.0, 0.1, 0.25, 0.4));

}  // namespace
}  // namespace symcan

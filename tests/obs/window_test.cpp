#include "symcan/obs/window.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

namespace symcan::obs {
namespace {

constexpr std::int64_t kSec = 1'000'000'000;

WindowConfig tiny_window() {
  WindowConfig cfg;
  cfg.bucket_width_ns = kSec;  // 1 s buckets...
  cfg.bucket_count = 4;        // ...over a 4 s window.
  return cfg;
}

TEST(WindowedCounterTest, EmptyWindowReadsZero) {
  WindowedCounter c{tiny_window()};
  EXPECT_EQ(c.window_count(0), 0);
  EXPECT_EQ(c.window_count(123 * kSec), 0);
  EXPECT_DOUBLE_EQ(c.window_rate(123 * kSec), 0.0);
}

TEST(WindowedCounterTest, CountsInsideTheWindowAndRotatesOutside) {
  WindowedCounter c{tiny_window()};
  c.add(1 * kSec);
  c.add(1 * kSec);
  c.add(2 * kSec);
  EXPECT_EQ(c.window_count(2 * kSec), 3);
  // 4 s window: the two samples at t=1s leave the window once the read
  // point passes t=5s (1s bucket + 4 bucket window).
  EXPECT_EQ(c.window_count(4 * kSec), 3);
  EXPECT_EQ(c.window_count(5 * kSec), 1);
  EXPECT_EQ(c.window_count(6 * kSec), 0);
}

TEST(WindowedCounterTest, RateUsesTheFixedWindowLength) {
  WindowedCounter c{tiny_window()};
  for (int i = 0; i < 8; ++i) c.add(2 * kSec);
  // 8 events over a fixed 4 s window = 2/s, regardless of how briefly
  // the process has actually been up.
  EXPECT_DOUBLE_EQ(c.window_rate(2 * kSec), 2.0);
}

TEST(WindowedCounterTest, FirstSampleAfterLongIdleEvictsStaleSlots) {
  WindowedCounter c{tiny_window()};
  for (int i = 0; i < 5; ++i) c.add(static_cast<std::int64_t>(i) * kSec);
  ASSERT_GT(c.window_count(4 * kSec), 0);
  // Idle for 1000 buckets, then one sample. The ring slots still hold
  // the old epochs, but their tags exclude them from the new window.
  const std::int64_t later = 1004 * kSec;
  c.add(later);
  EXPECT_EQ(c.window_count(later), 1);
}

TEST(WindowedCounterTest, ClockJumpForwardDropsTheOldWindowNotTheNewSample) {
  WindowedCounter c{tiny_window()};
  c.add(1 * kSec, 7);
  // Jump far past the window (suspend/resume, NTP step on a bad clock).
  const std::int64_t jumped = 1'000'000 * kSec;
  c.add(jumped);
  EXPECT_EQ(c.window_count(jumped), 1);
  // The pre-jump count is gone from the window but was never "negative"
  // or double-counted: reading at the old time still sees only slots
  // whose epoch is <= that time.
  EXPECT_EQ(c.window_count(1 * kSec), 7);
}

TEST(WindowedCounterTest, StaleSampleOlderThanSlotOccupantIsDropped) {
  WindowedCounter c{tiny_window()};
  // Slot index = bucket % 4, so buckets 2 and 6 share a slot.
  c.add(6 * kSec);
  // A racing thread with a slightly older clock tries bucket 2; the slot
  // already holds the newer epoch 6, so the sample is dropped rather
  // than corrupting the newer bucket.
  c.add(2 * kSec, 100);
  EXPECT_EQ(c.window_count(6 * kSec), 1);
}

TEST(WindowedCounterTest, DeltaAccumulatesWithinABucket) {
  WindowedCounter c{tiny_window()};
  c.add(3 * kSec, 10);
  c.add(3 * kSec, 5);
  EXPECT_EQ(c.window_count(3 * kSec), 15);
}

TEST(WindowedHistogramTest, EmptySnapshotIsAllZeros) {
  WindowedHistogram h{tiny_window(), {1, 10, 100}};
  const WindowStats s = h.snapshot(50 * kSec);
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0);
  EXPECT_DOUBLE_EQ(s.rate_per_sec, 0);
  EXPECT_DOUBLE_EQ(s.p50, 0);
  EXPECT_DOUBLE_EQ(s.p99, 0);
  EXPECT_EQ(s.window_ns, tiny_window().window_ns());
}

TEST(WindowedHistogramTest, MeanAndCountMergeAcrossBuckets) {
  WindowedHistogram h{tiny_window(), {1, 10, 100}};
  h.record(1 * kSec, 2);
  h.record(2 * kSec, 4);
  h.record(3 * kSec, 6);
  const WindowStats s = h.snapshot(3 * kSec);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 12);
  EXPECT_DOUBLE_EQ(s.mean, 4);
  EXPECT_DOUBLE_EQ(s.rate_per_sec, 3.0 / 4.0);
}

TEST(WindowedHistogramTest, QuantilesInterpolateMergedBuckets) {
  WindowedHistogram h{tiny_window(), {10, 20, 30, 40}};
  // 100 samples uniform in the 0..10 bucket.
  for (int i = 0; i < 100; ++i) h.record(1 * kSec, 5);
  const WindowStats s = h.snapshot(1 * kSec);
  // All mass in the first bucket: p50 interpolates to its midpoint.
  EXPECT_GT(s.p50, 0);
  EXPECT_LE(s.p50, 10);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(WindowedHistogramTest, OverflowSamplesReportTheTopBound) {
  WindowedHistogram h{tiny_window(), {10, 20}};
  for (int i = 0; i < 10; ++i) h.record(1 * kSec, 1e9);
  const WindowStats s = h.snapshot(1 * kSec);
  EXPECT_EQ(s.count, 10);
  // Quantiles can't exceed what the buckets resolve: the overflow bucket
  // degrades to the largest finite bound.
  EXPECT_DOUBLE_EQ(s.p99, 20);
}

TEST(WindowedHistogramTest, RotationZeroesEveryParallelArray) {
  WindowedHistogram h{tiny_window(), {10, 20}};
  h.record(1 * kSec, 5);
  h.record(1 * kSec, 15);
  ASSERT_EQ(h.snapshot(1 * kSec).count, 2);
  // Bucket 5 reuses slot 1; the rotation must clear count, sum and every
  // le-bucket or the merged quantiles would resurrect old samples.
  h.record(5 * kSec, 25);
  const WindowStats s = h.snapshot(5 * kSec);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.sum, 25);
  EXPECT_DOUBLE_EQ(s.p50, 20);  // all mass in overflow -> top bound
}

TEST(WindowedHistogramTest, IdleGapThenSampleSeesOnlyTheNewSample) {
  WindowedHistogram h{tiny_window(), {10, 20}};
  for (int i = 0; i < 50; ++i) h.record(2 * kSec, 3);
  h.record(9999 * kSec, 12);
  const WindowStats s = h.snapshot(9999 * kSec);
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.sum, 12);
}

TEST(WindowedHistogramTest, ConcurrentRecordsAllLandWithoutRotation) {
  // With a fixed now_ns there is no rotation race, so every sample must
  // be counted exactly once (wait-free relaxed adds).
  WindowedHistogram h{tiny_window(), {1, 10, 100}};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(2 * kSec, 5);
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.snapshot(2 * kSec).count,
            static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(WindowedHistogramTest, ConcurrentRecordsAcrossRotationNeverOvercount) {
  // Rotation may LOSE racing samples (documented) but must never invent
  // or double-count them.
  WindowedHistogram h{tiny_window(), {1, 10, 100}};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<int> next{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([&h, &next] {
      for (int i = 0; i < kPerThread; ++i) {
        const int n = next.fetch_add(1, std::memory_order_relaxed);
        h.record(static_cast<std::int64_t>(n / 100) * kSec, 1.0);
      }
    });
  for (auto& t : ts) t.join();
  const std::int64_t last_bucket = (kThreads * kPerThread - 1) / 100;
  const WindowStats s = h.snapshot(last_bucket * kSec);
  EXPECT_LE(s.count, static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_GE(s.count, 0);
}

TEST(WindowedHistogramTest, RejectsBadBounds) {
  EXPECT_THROW(WindowedHistogram(tiny_window(), {}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram(tiny_window(), {10, 10}), std::invalid_argument);
  EXPECT_THROW(WindowedHistogram(tiny_window(), {10, 5}), std::invalid_argument);
}

TEST(SloTrackerTest, TracksLifetimeAndWindowedMisses) {
  SloConfig cfg;
  cfg.target_ns = 100;
  cfg.objective = 0.9;  // 10% error budget
  cfg.window = tiny_window();
  SloTracker slo{cfg};
  // 8 hits, 2 misses at t=1s: miss fraction 0.2, budget 0.1 -> burn 2.0.
  for (int i = 0; i < 8; ++i) slo.record(1 * kSec, 50);
  for (int i = 0; i < 2; ++i) slo.record(1 * kSec, 500);
  const SloStats s = slo.snapshot(1 * kSec);
  EXPECT_EQ(s.total, 10);
  EXPECT_EQ(s.over_target, 2);
  EXPECT_EQ(s.window_total, 10);
  EXPECT_EQ(s.window_over, 2);
  EXPECT_NEAR(s.burn_rate, 2.0, 1e-9);
  EXPECT_NEAR(s.budget_used, 2.0, 1e-9);
}

TEST(SloTrackerTest, WindowForgetsOldMissesButLifetimeDoesNot) {
  SloConfig cfg;
  cfg.target_ns = 100;
  cfg.objective = 0.9;
  cfg.window = tiny_window();
  SloTracker slo{cfg};
  slo.record(1 * kSec, 500);  // miss
  const std::int64_t later = 100 * kSec;
  slo.record(later, 50);  // hit, far outside the first window
  const SloStats s = slo.snapshot(later);
  EXPECT_EQ(s.total, 2);
  EXPECT_EQ(s.over_target, 1);
  EXPECT_EQ(s.window_total, 1);
  EXPECT_EQ(s.window_over, 0);
  EXPECT_DOUBLE_EQ(s.burn_rate, 0);
  EXPECT_GT(s.budget_used, 0);
}

TEST(SloTrackerTest, ExactlyOnTargetIsAHit) {
  SloConfig cfg;
  cfg.target_ns = 100;
  cfg.window = tiny_window();
  SloTracker slo{cfg};
  slo.record(1 * kSec, 100);
  const SloStats s = slo.snapshot(1 * kSec);
  EXPECT_EQ(s.over_target, 0);
}

TEST(SloTrackerTest, RejectsDegenerateConfig) {
  SloConfig bad_target;
  bad_target.target_ns = 0;
  EXPECT_THROW(SloTracker{bad_target}, std::invalid_argument);
  SloConfig bad_objective;
  bad_objective.target_ns = 100;
  bad_objective.objective = 1.0;
  EXPECT_THROW(SloTracker{bad_objective}, std::invalid_argument);
}

TEST(SloTrackerTest, RejectsEveryObjectiveOutsideOpenUnitInterval) {
  // Regression: objective == 1.0 makes the error allowance (1 - objective)
  // zero, turning burn_rate into miss_frac / 0 — inf/nan that poisons the
  // telemetry and health JSON. The constructor must refuse the whole
  // boundary, both rails included.
  for (const double objective : {1.0, 0.0, -0.5, 1.5}) {
    SloConfig cfg;
    cfg.target_ns = 100;
    cfg.objective = objective;
    cfg.window = tiny_window();
    EXPECT_THROW(SloTracker{cfg}, std::invalid_argument) << "objective=" << objective;
  }
}

TEST(SloTrackerTest, BurnRateStaysFiniteUnderTotalMisses) {
  // 100% misses against a tight objective: the largest burn rate the
  // tracker can produce. It must be a finite number, never inf/nan.
  SloConfig cfg;
  cfg.target_ns = 100;
  cfg.objective = 0.999;
  cfg.window = tiny_window();
  SloTracker slo{cfg};
  for (int i = 0; i < 10; ++i) slo.record(1 * kSec, 10'000);
  const SloStats s = slo.snapshot(1 * kSec);
  EXPECT_TRUE(std::isfinite(s.burn_rate));
  EXPECT_TRUE(std::isfinite(s.budget_used));
  EXPECT_NEAR(s.burn_rate, 1000.0, 1e-6);
}

}  // namespace
}  // namespace symcan::obs

#include "symcan/obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "symcan/obs/metrics.hpp"

namespace symcan::obs {
namespace {

TEST(PrometheusNameTest, PrefixesAndSanitizes) {
  EXPECT_EQ(prometheus_name("serve.requests"), "symcan_serve_requests");
  EXPECT_EQ(prometheus_name("ga.best-fitness"), "symcan_ga_best_fitness");
  EXPECT_EQ(prometheus_name("weird name/with:colon"), "symcan_weird_name_with:colon");
  EXPECT_EQ(prometheus_name("7starts.with.digit"), "symcan_7starts_with_digit");
}

TEST(PrometheusExportTest, CounterGetsTotalSuffixAndHeaders) {
  MetricsRegistry reg;
  reg.counter("serve.requests").add(42);
  const std::string text = metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# HELP symcan_serve_requests_total "), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE symcan_serve_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nsymcan_serve_requests_total 42\n"), std::string::npos);
}

TEST(PrometheusExportTest, GaugeKeepsItsName) {
  MetricsRegistry reg;
  reg.gauge("ring.pressure").set(0.75);
  const std::string text = metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE symcan_ring_pressure gauge\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_ring_pressure 0.75\n"), std::string::npos);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", std::vector<double>{10, 20});
  h.observe(5);    // le=10
  h.observe(15);   // le=20
  h.observe(999);  // overflow
  const std::string text = metrics_to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE symcan_lat histogram\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_lat_bucket{le=\"10\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_lat_bucket{le=\"20\"} 2\n"), std::string::npos) << text;
  // +Inf must equal _count and include the overflow observation.
  EXPECT_NE(text.find("symcan_lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_lat_count 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_lat_sum 1019\n"), std::string::npos) << text;
}

TEST(PrometheusExportTest, CollidingNamesKeepFirstSpellingOnly) {
  MetricsRegistry reg;
  reg.counter("a.b").add(1);
  reg.counter("a/b").add(2);  // sanitizes to the same family
  const std::string text = metrics_to_prometheus(reg);
  std::size_t first = text.find("symcan_a_b_total");
  ASSERT_NE(first, std::string::npos);
  // Exactly one sample line for the family.
  std::size_t samples = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("symcan_a_b_total ", 0) == 0) ++samples;
  EXPECT_EQ(samples, 1u);
}

TEST(PrometheusExportTest, NonFiniteValuesDegradeToZero) {
  MetricsRegistry reg;
  reg.gauge("bad.one").set(std::numeric_limits<double>::quiet_NaN());
  reg.gauge("bad.two").set(std::numeric_limits<double>::infinity());
  const std::string text = metrics_to_prometheus(reg);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_bad_one 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("symcan_bad_two 0\n"), std::string::npos) << text;
}

TEST(PrometheusExportTest, EveryFamilyHasHelpAndTypeAndUniqueNames) {
  // The same invariants CI lints on real serve output, checked here at
  // the unit level over a registry with every metric class.
  MetricsRegistry reg;
  reg.counter("c.one").add(1);
  reg.gauge("g.one").set(2);
  reg.histogram("h.one", std::vector<double>{1, 2}).observe(1.5);
  reg.series("s.one").append({{"x", 1.0}});  // series never reach the wire

  const std::string text = metrics_to_prometheus(reg);
  EXPECT_EQ(text.find("s_one"), std::string::npos) << text;

  std::set<std::string> families;
  std::istringstream in(text);
  std::string line;
  std::string last_type_family;
  while (std::getline(in, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string fam = line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(families.insert(fam).second) << "duplicate family " << fam;
      last_type_family = fam;
    } else if (line.rfind("# HELP ", 0) == 0) {
      continue;
    } else if (!line.empty()) {
      // Sample lines belong to the most recent family header.
      EXPECT_EQ(line.rfind(last_type_family, 0), 0u) << line;
    }
  }
  EXPECT_EQ(families.size(), 3u);
}

TEST(PrometheusExportTest, EmptyRegistryYieldsEmptyExposition) {
  MetricsRegistry reg;
  EXPECT_TRUE(metrics_to_prometheus(reg).empty());
}

}  // namespace
}  // namespace symcan::obs

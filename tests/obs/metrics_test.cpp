#include "symcan/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "symcan/obs/export.hpp"

namespace symcan::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Gauge, LastValueWins) {
  Gauge g;
  g.set(1.5);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketsUseLeSemantics) {
  Histogram h{{1.0, 2.0, 5.0}};
  h.observe(1.0);  // boundary value goes into its own le bucket
  h.observe(1.5);
  h.observe(5.0);
  h.observe(7.0);  // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bucket_count(0), 1);  // <= 1
  EXPECT_EQ(h.bucket_count(1), 1);  // (1, 2]
  EXPECT_EQ(h.bucket_count(2), 1);  // (2, 5]
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow
  EXPECT_DOUBLE_EQ(h.sum(), 14.5);
  EXPECT_DOUBLE_EQ(h.observed_min(), 1.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 7.0);
}

TEST(Histogram, QuantileExactAtBucketBoundary) {
  // All observations sit exactly on a bucket boundary: every quantile must
  // return the boundary, not an interpolated value from inside the bucket.
  Histogram h{{1.0, 2.0, 5.0, 10.0}};
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileOrderingAcrossBuckets) {
  Histogram h{{10.0, 20.0, 50.0, 100.0}};
  // 90 observations <= 10, 10 in (50, 100].
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(80.0);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, 10.0);
  EXPECT_GE(p50, 5.0);  // clamped to observed min
  EXPECT_GT(p95, 50.0);
  EXPECT_LE(p95, 80.0);  // clamped to observed max
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 80.0);
}

TEST(Histogram, QuantileOverflowReturnsLastFiniteBound) {
  // All we know about an overflow sample is v > bounds.back(); the
  // documented contract reports the last finite bucket edge, never the
  // observed max (which may be +inf — see the regression below).
  Histogram h{{1.0}};
  h.observe(100.0);
  h.observe(200.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 200.0);  // The max itself stays exact.
}

TEST(Histogram, AllSamplesInOverflowKeepQuantilesFinite) {
  // Regression: every sample lands in the +inf overflow bucket
  // (including an actually-infinite sample). Quantiles must return the
  // last finite bucket edge — not 0, not inf — so the JSON export and
  // the Prometheus exposition stay consistent and finite.
  Histogram h{{10.0, 20.0, 50.0}};
  h.observe(1000.0);
  h.observe(std::numeric_limits<double>::infinity());
  for (const double q : {0.5, 0.95, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_TRUE(std::isfinite(v)) << "q=" << q;
    EXPECT_DOUBLE_EQ(v, 50.0) << "q=" << q;
  }
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.bucket_count(3), 2);  // Both in the overflow bucket.
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.observed_min(), 0.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 0.0);
}

TEST(Series, KeepsSamplesInOrder) {
  Series s;
  s.append({{"gen", 0.0}, {"best", 3.0}});
  s.append({{"gen", 1.0}, {"best", 2.0}});
  const auto samples = s.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[1][0].first, "gen");
  EXPECT_DOUBLE_EQ(samples[1][1].second, 2.0);
  s.reset();
  EXPECT_TRUE(s.samples().empty());
}

TEST(MetricsRegistry, HandlesAreStableAcrossReset) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  c.add(5);
  EXPECT_EQ(&reg.counter("hits"), &c);  // same handle on re-lookup
  reg.reset();
  EXPECT_EQ(c.value(), 0);  // value cleared, handle still live
  c.add(1);
  EXPECT_EQ(reg.counter("hits").value(), 1);
}

TEST(MetricsRegistry, HistogramBoundsFixedAtFirstRegistration) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(&reg.histogram("lat", {5.0, 10.0, 20.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(MetricsRegistry, SnapshotCoversAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").add(3);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {1.0, 10.0}).observe(4.0);
  reg.series("s").append({{"x", 1.0}});
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "c");
  EXPECT_EQ(snap.counters[0].second, 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 2u);
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].second.size(), 1u);
}

TEST(MetricsRegistry, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const auto bounds = MetricsRegistry::default_latency_bounds_us();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(Export, MetricsJsonContainsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("rta.analyses").add(7);
  reg.gauge("width").set(4.0);
  reg.histogram("task_us", {10.0, 100.0}).observe(42.0);
  reg.series("gens").append({{"gen", 0.0}});
  const std::string json = metrics_to_json(reg);
  EXPECT_NE(json.find("\"rta.analyses\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"width\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"task_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"gens\""), std::string::npos);
}

TEST(Export, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_number(1.0 / 0.0), "null");
}

}  // namespace
}  // namespace symcan::obs

#include "symcan/obs/trace.hpp"

#include <gtest/gtest.h>

#include "symcan/obs/export.hpp"
#include "symcan/obs/obs.hpp"

namespace symcan::obs {
namespace {

TEST(Tracer, RecordsSpansSortedByStart) {
  Tracer t;
  t.record_span("b", 1000, 2500);
  t.record_span("a", 200, 700);
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].dur_us, 500);
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[1].dur_us, 1500);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(Tracer, InstantsAreRecordedWithNoDuration) {
  Tracer t;
  t.record_instant("i");
  const auto events = t.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "i");
  EXPECT_EQ(events[0].dur_us, -1);
  EXPECT_GE(events[0].start_us, 0);
}

TEST(Tracer, ResetDiscardsEverything) {
  Tracer t;
  t.record_span("x", 0, 1);
  ASSERT_EQ(t.collect().size(), 1u);
  t.reset();
  EXPECT_TRUE(t.collect().empty());
  // Recording after reset re-registers the thread buffer transparently.
  t.record_span("y", 0, 1);
  ASSERT_EQ(t.collect().size(), 1u);
  EXPECT_EQ(t.collect()[0].name, "y");
}

TEST(Tracer, TwoTracersDoNotShareBuffers) {
  Tracer t1;
  Tracer t2;
  t1.record_span("one", 0, 1);
  t2.record_span("two", 0, 1);
  ASSERT_EQ(t1.collect().size(), 1u);
  EXPECT_EQ(t1.collect()[0].name, "one");
  ASSERT_EQ(t2.collect().size(), 1u);
  EXPECT_EQ(t2.collect()[0].name, "two");
}

TEST(Tracer, NowIsMonotonic) {
  Tracer t;
  const auto a = t.now_us();
  const auto b = t.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(Export, ChromeTraceFormat) {
  Tracer t;
  t.record_span("rta.can.analyze", 3, 17);
  t.record_instant("marker \"quoted\"");
  const std::string json = trace_to_chrome_json(t);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 14"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("marker \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(SpanGuard, NoopWhenDisabled) {
  set_enabled(false);
  reset();
  {
    SYMCAN_OBS_SPAN("should.not.appear");
  }
  EXPECT_TRUE(tracer().collect().empty());
}

TEST(SpanGuard, RecordsWhenEnabled) {
  reset();
  set_enabled(true);
  {
    SYMCAN_OBS_SPAN("outer");
    { SYMCAN_OBS_SPAN("inner"); }
  }
  set_enabled(false);
  const auto events = tracer().collect();
  ASSERT_EQ(events.size(), 2u);
  // Both spans may start within the same microsecond, so assert on the
  // set of names and the nesting invariant (outer covers inner), not on
  // a specific order.
  const TraceEvent& outer = events[0].name == std::string{"outer"} ? events[0] : events[1];
  const TraceEvent& inner = events[0].name == std::string{"outer"} ? events[1] : events[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_LE(outer.start_us, inner.start_us);
  EXPECT_GE(outer.dur_us, inner.dur_us);
  reset();
}

}  // namespace
}  // namespace symcan::obs

// JSON string escaping, pinned against hostile names. Metric, message
// and ECU names flow from user-controlled inputs (CSV / DBC files)
// straight into every JSON exporter; a single unescaped quote or control
// byte silently corrupts the whole document for downstream tools. These
// tests pin obs::json_escape byte-for-byte and prove the exporters route
// every name through it.

#include "symcan/obs/export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "symcan/sim/trace.hpp"
#include "symcan/sim/trace_export.hpp"

namespace symcan {
namespace {

// Minimal well-formedness scan: inside strings, escapes must be legal and
// control bytes absent; outside, braces/brackets must balance. Catches
// exactly the corruption unescaped names cause without a full parser.
bool json_well_formed(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control byte
      if (c == '\\') {
        if (++i >= s.size()) return false;
        const char e = s[i];
        if (e == 'u') {
          if (i + 4 >= s.size()) return false;
          for (std::size_t k = 1; k <= 4; ++k)
            if (!isxdigit(static_cast<unsigned char>(s[i + k]))) return false;
          i += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

const char kHostile[] = "a\"b\\c\nd\te\x01" "f, \"}], ";

TEST(JsonEscape, PinnedByteForByte) {
  EXPECT_EQ(obs::json_escape("plain_name-42"), "plain_name-42");
  EXPECT_EQ(obs::json_escape("\""), "\\\"");
  EXPECT_EQ(obs::json_escape("\\"), "\\\\");
  EXPECT_EQ(obs::json_escape("\b\f\n\r\t"), "\\b\\f\\n\\r\\t");
  // Other control bytes take the \u00XX form.
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x1f')), "\\u001f");
  // Non-ASCII bytes (UTF-8 continuation etc.) pass through untouched.
  EXPECT_EQ(obs::json_escape("\xc3\xa9"), "\xc3\xa9");
  EXPECT_EQ(obs::json_escape(kHostile), "a\\\"b\\\\c\\nd\\te\\u0001f, \\\"}], ");
}

TEST(JsonEscape, MetricsExportSurvivesHostileMetricNames) {
  obs::MetricsRegistry reg;
  reg.counter(kHostile).add(3);
  reg.histogram(std::string("h") + kHostile).observe(1.5);
  reg.gauge("ok").set(1);
  const std::string json = obs::metrics_to_json(reg);
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\u0001f"), std::string::npos);
  EXPECT_EQ(json.find(std::string("\"") + kHostile), std::string::npos);
}

TEST(JsonEscape, SimTraceExportersSurviveHostileMessageNames) {
  Trace trace;
  trace.record(Duration::us(10), TraceEventType::kRelease, kHostile, 0);
  trace.record(Duration::us(20), TraceEventType::kTxStart, kHostile, 0);
  trace.record(Duration::us(30), TraceEventType::kTxEnd, kHostile, 0);

  const std::string jsonl = trace_to_jsonl(trace);
  // Each line must be well-formed on its own.
  std::size_t start = 0;
  int lines = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    EXPECT_TRUE(json_well_formed(line)) << line;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(jsonl.find("a\\\"b\\\\c"), std::string::npos);

  // Names with ';' or line breaks can no longer enter a KMatrix at all
  // (validate() rejects them to keep the CSV round-trip invertible), so
  // the matrix path gets the worst name that can legally exist there:
  // quotes, backslashes, tabs and control bytes still flow to JSON.
  const std::string hostile_in_matrix = "a\"b\\c\td\x01e, \"}], ";
  KMatrix km{"bus", BitTiming{500'000}};
  EcuNode node;
  node.name = "ecu\"with\\quotes";
  km.add_node(node);
  CanMessage m;
  m.name = hostile_in_matrix;
  m.id = 0x10;
  m.payload_bytes = 8;
  m.period = Duration::ms(10);
  m.sender = node.name;
  km.add_message(m);

  const std::string chrome = sim_trace_to_chrome_json(trace, km);
  EXPECT_TRUE(json_well_formed(chrome)) << chrome;
  EXPECT_NE(chrome.find("ecu\\\"with\\\\quotes"), std::string::npos);
  EXPECT_NE(chrome.find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace symcan

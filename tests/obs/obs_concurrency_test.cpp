// Concurrency contract of the obs subsystem, run under TSan via the
// `determinism` ctest label (see tests/CMakeLists.txt): recording from
// many threads must be lossless for counters/histograms and race-free
// for the registry, the tracer, and the global enable flag.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "symcan/obs/obs.hpp"
#include "symcan/obs/window.hpp"

namespace symcan::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 20'000;

template <typename Body>
void fan_out(const Body& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back([&body, t] { body(t); });
  for (auto& th : threads) th.join();
}

TEST(ObsConcurrency, CounterIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  fan_out([&](int) {
    for (int i = 0; i < kIters; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(ObsConcurrency, HistogramObservationsAreLossless) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 10.0, 100.0});
  fan_out([&](int t) {
    for (int i = 0; i < kIters; ++i) h.observe(static_cast<double>(t % 3) * 50.0);
  });
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kIters);
  std::int64_t bucket_total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_DOUBLE_EQ(h.observed_min(), 0.0);
  EXPECT_DOUBLE_EQ(h.observed_max(), 100.0);
}

TEST(ObsConcurrency, RegistryLookupIsRaceFreeAndStable) {
  MetricsRegistry reg;
  std::vector<Counter*> handles(kThreads, nullptr);
  fan_out([&](int t) {
    // All threads race to create the same metric; everyone must get the
    // one handle and no increment may be lost.
    Counter& c = reg.counter("shared");
    handles[static_cast<std::size_t>(t)] = &c;
    for (int i = 0; i < 1000; ++i) c.add(1);
  });
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[static_cast<std::size_t>(t)], handles[0]);
  EXPECT_EQ(reg.counter("shared").value(), static_cast<std::int64_t>(kThreads) * 1000);
}

TEST(ObsConcurrency, TracerBuffersArePerThread) {
  Tracer tracer;
  fan_out([&](int) {
    for (int i = 0; i < 500; ++i) {
      const auto start = tracer.now_us();
      tracer.record_span("work", start, start + 1);
    }
  });
  EXPECT_EQ(tracer.collect().size(), static_cast<std::size_t>(kThreads) * 500);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(ObsConcurrency, SeriesAppendsAreLossless) {
  MetricsRegistry reg;
  Series& s = reg.series("gens");
  fan_out([&](int t) {
    for (int i = 0; i < 200; ++i) s.append({{"thread", static_cast<double>(t)}});
  });
  EXPECT_EQ(s.samples().size(), static_cast<std::size_t>(kThreads) * 200);
}

TEST(ObsConcurrency, SnapshotRacesResetAndRecording) {
  // snapshot() and reset() may interleave with hot recording from any
  // thread: no crash, no TSan report, and every value read is sane
  // (never negative, buckets never exceed the histogram total recorded).
  MetricsRegistry reg;
  Counter& c = reg.counter("race.counter");
  Histogram& h = reg.histogram("race.hist", {1.0, 10.0, 100.0});
  std::atomic<bool> stop{false};
  std::thread resetter{[&] {
    for (int i = 0; i < 200; ++i) reg.reset();
    stop.store(true, std::memory_order_relaxed);
  }};
  std::thread snapshotter{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RegistrySnapshot snap = reg.snapshot();
      for (const auto& [name, value] : snap.counters) EXPECT_GE(value, 0) << name;
      for (const auto& hist : snap.histograms) {
        EXPECT_GE(hist.count, 0);
        for (const auto& [le, count] : hist.buckets) EXPECT_GE(count, 0) << le;
      }
    }
  }};
  fan_out([&](int t) {
    for (int i = 0; i < kIters; ++i) {
      c.add(1);
      h.observe(static_cast<double>(t % 3) * 50.0);
    }
  });
  resetter.join();
  snapshotter.join();
  // Handles stayed valid across every reset: recording still works.
  c.add(1);
  EXPECT_GT(reg.counter("race.counter").value(), 0);
}

TEST(ObsConcurrency, WindowedRecordingRacesSnapshots) {
  // The windowed aggregates share the metrics contract: wait-free
  // recording from any thread while readers take snapshots.
  WindowConfig wcfg;
  wcfg.bucket_width_ns = 1'000'000;  // 1 ms buckets: rotation under load
  wcfg.bucket_count = 4;
  WindowedHistogram wh{wcfg, {1.0, 10.0, 100.0}};
  WindowedCounter wc{wcfg};
  std::atomic<std::int64_t> fake_now{0};
  std::atomic<bool> stop{false};
  std::thread reader{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::int64_t now = fake_now.load(std::memory_order_relaxed);
      const WindowStats s = wh.snapshot(now);
      EXPECT_GE(s.count, 0);
      EXPECT_GE(wc.window_count(now), 0);
    }
  }};
  fan_out([&](int) {
    for (int i = 0; i < kIters; ++i) {
      const std::int64_t now = fake_now.fetch_add(500, std::memory_order_relaxed);
      wh.record(now, static_cast<double>(i % 100));
      wc.add(now);
    }
  });
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(ObsConcurrency, EnableFlagTogglesUnderRecording) {
  // Threads hammer the gated helpers while the main thread toggles the
  // flag: no crash, no TSan report; counts are <= the recorded maximum.
  reset();
  std::thread toggler{[] {
    for (int i = 0; i < 200; ++i) set_enabled(i % 2 == 0);
  }};
  fan_out([&](int) {
    for (int i = 0; i < 2000; ++i) count("toggled.hits");
  });
  toggler.join();
  set_enabled(false);
  EXPECT_LE(metrics().counter("toggled.hits").value(),
            static_cast<std::int64_t>(kThreads) * 2000);
  reset();
}

}  // namespace
}  // namespace symcan::obs

// Enforces the obs overhead contract (DESIGN.md "Observability"): with
// observation disabled, instrumentation points perform ZERO heap
// allocations — the whole cost is one relaxed atomic load each. The
// global operator new is replaced with a counting shim to prove it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "symcan/obs/obs.hpp"
#include "symcan/obs/window.hpp"
#include "symcan/serve/telemetry.hpp"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace symcan::obs {
namespace {

TEST(ObsOverhead, DisabledPathAllocatesNothing) {
  set_enabled(false);
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    count("hot.counter");
    count("hot.counter", 5);
    gauge_set("hot.gauge", 1.0);
    observe("hot.histogram", 42.0);
    instant("hot.instant");
    SYMCAN_OBS_SPAN("hot.span");
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "disabled obs path must not allocate";
}

TEST(ObsOverhead, EnabledPathActuallyRecords) {
  // Sanity check that the zero-allocation result above is not because the
  // helpers are unconditional no-ops.
  reset();
  set_enabled(true);
  count("sanity.counter", 3);
  observe("sanity.histogram", 7.0);
  { SYMCAN_OBS_SPAN("sanity.span"); }
  set_enabled(false);
  EXPECT_EQ(metrics().counter("sanity.counter").value(), 3);
  EXPECT_EQ(metrics().histogram("sanity.histogram").count(), 1);
  EXPECT_EQ(tracer().collect().size(), 1u);
  reset();
}

TEST(ObsOverhead, WindowedRecordingAllocatesNothing) {
  // The windowed aggregates preallocate their whole ring at construction;
  // record() — including the slot rotations this loop forces — is CAS +
  // relaxed adds only.
  WindowConfig cfg;
  cfg.bucket_width_ns = 1000;
  cfg.bucket_count = 4;
  WindowedHistogram h{cfg, {1.0, 10.0, 100.0}};
  WindowedCounter c{cfg};
  SloConfig scfg;
  scfg.target_ns = 50;
  scfg.window = cfg;
  SloTracker slo{scfg};
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t now = static_cast<std::int64_t>(i) * 700;
    h.record(now, static_cast<double>(i % 200));
    c.add(now);
    slo.record(now, i % 100);
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "windowed recording must not allocate";
}

TEST(ObsOverhead, RequestTelemetryRecordingAllocatesNothing) {
  // One telemetry record per request rides the serve hot path
  // unconditionally, so it must be a bounded copy: set_id into the
  // fixed id buffer, flight-recorder record into preallocated slots.
  serve::FlightRecorder recorder{64};
  const std::string id = "req-7";  // SSO: built outside the window
  serve::RequestTelemetry t;
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    t.set_id(id);
    t.enqueue_ns = i;
    t.dequeue_ns = i + 1;
    t.start_ns = i + 2;
    t.finish_ns = i + 40;
    recorder.record(t);
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "telemetry recording must not allocate";
  EXPECT_EQ(recorder.recorded(), 10'000);
}

TEST(ObsOverhead, FlowContextAllocatesNothing) {
  set_enabled(false);
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    FlowScope scope{static_cast<std::uint64_t>(i)};
    set_thread_name("symcan-worker-0");
    (void)current_flow();
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "flow context must not allocate";
}

TEST(ObsOverhead, RecordingOnCachedHandlesAllocatesNothing) {
  // The per-value hot path on already-registered handles is allocation-
  // free too: registration cost is paid once, recording is atomics only.
  reset();
  set_enabled(true);
  Counter& c = metrics().counter("cached.counter");
  Histogram& h = metrics().histogram("cached.histogram");
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    c.add(1);
    h.observe(static_cast<double>(i));
  }
  const long after = g_allocations.load(std::memory_order_relaxed);
  set_enabled(false);
  EXPECT_EQ(after - before, 0) << "recording on cached handles must not allocate";
  EXPECT_EQ(c.value(), 10'000);
  reset();
}

}  // namespace
}  // namespace symcan::obs

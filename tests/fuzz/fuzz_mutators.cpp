#include "fuzz_mutators.hpp"

#include <cctype>
#include <sstream>

#include "symcan/util/rng.hpp"

namespace symcan::fuzz {

namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) lines.push_back(std::move(cur));
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out.push_back('\n');
  }
  return out;
}

const std::string& pick(const std::vector<std::string>& pool, Rng& rng) {
  return pool[rng.index(pool.size())];
}

/// Replace one randomly chosen digit run in `s` with a boundary number.
void swap_number(std::string& s, Rng& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // (start, len)
  for (std::size_t i = 0; i < s.size();) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      std::size_t j = i;
      while (j < s.size() && std::isdigit(static_cast<unsigned char>(s[j]))) ++j;
      const std::size_t start = (i > 0 && s[i - 1] == '-') ? i - 1 : i;
      runs.emplace_back(start, j - start);
      i = j;
    } else {
      ++i;
    }
  }
  if (runs.empty()) return;
  const auto [start, len] = runs[rng.index(runs.size())];
  s = s.substr(0, start) + pick(boundary_numbers(), rng) + s.substr(start + len);
}

/// Line-level mutations shared by the DBC and CSV mutators; `garbage`
/// supplies format-specific hostile inserts.
std::string mutate_lines(const std::string& seed_text, std::uint64_t seed,
                         const std::vector<std::string>& garbage) {
  Rng rng{seed};
  auto lines = split_lines(seed_text);
  const int ops = static_cast<int>(rng.uniform_int(1, 4));
  for (int op = 0; op < ops; ++op) {
    if (lines.empty()) {
      lines.push_back(pick(garbage, rng));
      continue;
    }
    switch (rng.uniform_int(0, 6)) {
      case 0:  // delete a line
        lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(rng.index(lines.size())));
        break;
      case 1:  // duplicate a line (duplicate ids, doubled records)
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(rng.index(lines.size())),
                     lines[rng.index(lines.size())]);
        break;
      case 2:  // reorder
        std::swap(lines[rng.index(lines.size())], lines[rng.index(lines.size())]);
        break;
      case 3:  // boundary number
        swap_number(lines[rng.index(lines.size())], rng);
        break;
      case 4:  // hostile insert
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(rng.index(lines.size())),
                     pick(garbage, rng));
        break;
      case 5: {  // truncate a line mid-token
        std::string& l = lines[rng.index(lines.size())];
        if (!l.empty()) l.resize(rng.index(l.size()));
        break;
      }
      case 6: {  // splice two lines
        const std::string& src = lines[rng.index(lines.size())];
        std::string& dst = lines[rng.index(lines.size())];
        if (!src.empty()) dst += src.substr(rng.index(src.size()));
        break;
      }
    }
  }
  return join_lines(lines);
}

}  // namespace

const std::vector<std::string>& boundary_numbers() {
  static const std::vector<std::string> kPool = {
      "0",
      "1",
      "-1",
      "8",
      "9",
      "-9",
      "2047",                  // max standard id
      "2048",                  // first invalid standard id
      "536870911",             // max extended id (2^29-1)
      "536870912",             // 2^29
      "2147483647",            // 2^31-1 (largest raw id without bit 31)
      "2147483648",            // bit 31 set, extended id 0
      "2684354559",            // bit 31 set, extended id at the 29-bit edge
      "4294967295",            // 2^32-1
      "4294967296",            // 2^32
      "9223372036854775807",   // int64 max
      "-9223372036854775808",  // int64 min
      "99999999999999999999",  // overflows int64 in parsing
  };
  return kPool;
}

std::string mutate_dbc(const std::string& seed_text, std::uint64_t seed) {
  static const std::vector<std::string> kGarbage = {
      "BO_",
      "BO_ zz Name: 8 ECU",
      "BO_ 100 : 8 ECU",
      "BO_ 100 NoSender: 8",
      "BO_ 2147483649 Ext: 9 ECU",
      " SG_ Sig : 0|8@1+ (1,0) [0|0] \"\" ECU1,ECU2",
      "SG_ Orphan : 0|8@1+ (1,0) [0|0] \"\" ,,,",
      "BA_ \"GenMsgCycleTime\" BO_ 100 0;",
      "BA_ \"GenMsgCycleTime\" BO_ 999 -5;",
      "BA_ \"GenMsgDelayTime\" BO_ 100 -1;",
      "BA_ \"Baudrate\" 0;",
      "BA_ \"Baudrate\" -500000;",
      "BA_DEF_DEF_ \"GenMsgCycleTime\" zz;",
      "BU_: A B C A",
      "\"unterminated",
  };
  return mutate_lines(seed_text, seed, kGarbage);
}

std::string mutate_csv(const std::string& seed_text, std::uint64_t seed) {
  static const std::vector<std::string> kGarbage = {
      "msg",
      "msg,,,,,,,,,,,,",
      "msg,M,1,standard,8",
      "bus,second,500000",
      "bus,,0",
      "node,N,neitherCAN,1,0",
      "node,N,fullCAN,0,2",
      "msg,M,4096,standard,8,10000000,0,0,period,-,A,B,1",
      "msg,M,1,extended,9,10000000,0,0,period,-,A,B;;C,1",
      "msg,M,1,standard,8,0,0,0,period,-,A,B,1",
      "msg,M,1,standard,8,10000000,-1,0,period,-,A,B,1",
      "msg,\"un,closed,2,standard,8,10000000,0,0,period,-,A,B,1",
      "wat,1,2,3",
      ",,,",
  };
  // Field-level hostility on top of the shared line mutations: double a
  // comma or semicolon somewhere so fields shift or empty out.
  Rng rng{seed * 2654435761u + 1};
  std::string text = mutate_lines(seed_text, seed, kGarbage);
  if (!text.empty() && rng.chance(0.5)) {
    const std::size_t at = rng.index(text.size());
    if (text[at] == ',' || text[at] == ';')
      text.insert(at, 1, text[at]);
    else if (rng.chance(0.5))
      text.insert(at, 1, ',');
  }
  return text;
}

std::string mutate_trace_jsonl(const std::string& seed_text, std::uint64_t seed) {
  static const std::vector<std::string> kGarbage = {
      "{",
      "}",
      "{}",
      "null",
      "[{\"t_ns\":1}]",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0} trailing",
      "{\"t_ns\":1,\"t_ns\":2,\"type\":\"release\",\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":-1,\"type\":\"release\",\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":1.5,\"type\":\"release\",\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":1e9,\"type\":\"release\",\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"warp\",\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":release,\"message\":\"m\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"\\u\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"\\ud800\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"\\ud83d\\ude00\",\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"unterminated,\"instance\":0}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":{}}",
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0,\"x\":true}",
      "{\"t_ns\":9223372036854775807,\"type\":\"loss\",\"message\":\"m\",\"instance\":0}",
  };
  return mutate_lines(seed_text, seed, kGarbage);
}

std::string mutate_serve_jsonl(const std::string& seed_text, std::uint64_t seed) {
  static const std::vector<std::string> kGarbage = {
      "{",
      "}",
      "{}",
      "null",
      "[]",
      "{\"id\":\"x\"}",
      "{\"kind\":\"analyze\",\"matrix_csv\":\"c\"}",
      "{\"id\":\"x\",\"kind\":\"frobnicate\",\"matrix_csv\":\"c\"}",
      "{\"id\":\"x\",\"id\":\"y\",\"kind\":\"health\"}",
      "{\"id\":\"x\",\"kind\":\"health\",\"matrix_csv\":\"c\"}",
      "{\"id\":\"x\",\"kind\":\"analyze\"}",
      "{\"id\":\"x\",\"kind\":\"analyze\",\"matrix_csv\":\"c\",\"millis\":100}",
      "{\"id\":\"x\",\"kind\":\"validate\",\"matrix_csv\":\"c\",\"preset\":\"best-case\"}",
      "{\"id\":\"x\",\"kind\":\"validate\",\"matrix_csv\":\"c\",\"millis\":0}",
      "{\"id\":\"x\",\"kind\":\"validate\",\"matrix_csv\":\"c\",\"seed\":-1}",
      "{\"id\":\"x\",\"kind\":\"validate\",\"matrix_csv\":\"c\",\"errors\":\"cosmic\"}",
      "{\"id\":\"x\",\"kind\":\"optimize\",\"matrix_csv\":\"c\",\"generations\":2000000}",
      "{\"id\":\"x\",\"kind\":\"analyze\",\"matrix_csv\":\"c\",\"jitter\":-0.5}",
      "{\"id\":\"x\",\"kind\":\"analyze\",\"matrix_csv\":\"c\",\"jitter\":1e308}",
      "{\"id\":\"x\",\"kind\":\"analyze\",\"matrix_csv\":{\"nested\":true}}",
      "{\"id\":\"x\",\"kind\":\"analyze\",\"matrix_csv\":[1,2]}",
      "{\"id\":\"x\",\"kind\":\"explain\",\"matrix_csv\":\"c\"}",
      "{\"id\":\"x\",\"kind\":\"explain\",\"matrix_csv\":\"c\",\"message\":\"\\ud800\"}",
      "{\"id\":\"\\u0000\",\"kind\":\"health\"}",
      "{\"id\":\"x\",\"kind\":\"health\",\"future_knob\":7}",
      "{\"id\":\"x\",\"kind\":\"health\"} trailing",
      "{\"id\":\"unterminated,\"kind\":\"health\"}",
      "{\"id\":\"x\",\"kind\":\"telemetry\"}",
      "{\"id\":\"x\",\"kind\":\"telemetry\",\"dump\":true}",
      "{\"id\":\"x\",\"kind\":\"telemetry\",\"dump\":\"yes\"}",
      "{\"id\":\"x\",\"kind\":\"telemetry\",\"matrix_csv\":\"c\"}",
      "{\"id\":\"x\",\"kind\":\"health\",\"dump\":true}",
      "{\"id\":\"x\",\"kind\":\"telemetry\",\"dump\":true,\"dump\":false}",
  };
  return mutate_lines(seed_text, seed, kGarbage);
}

std::string mutate_argv(const std::string& seed_text, std::uint64_t seed) {
  static const std::vector<std::string> kPool = {
      "generate",      "analyze",     "sweep",        "import",      "report",
      "budget",        "sensitivity", "optimize",     "simulate",    "explain",
      "validate",      "extend",      "version",      "help",        "frobnicate",
      "--worst-case",  "--best-case", "--strict",     "--dbc",       "--json",
      "--stats",       "--jitter",    "--seed",       "--messages",  "--ecus",
      "--util",        "--bitrate",   "--jobs",       "--rta-cache", "on",
      "off",           "--millis",    "--errors",     "sporadic",    "burst",
      "--from",        "--to",        "--step",       "--",          "---",
      "--no-such-opt", "0.5",         "-0.5",         "nan",         "no-such-file",
      "no-such.dbc",   "0",           "1",            "999",         "-1",
      "monitor",       "--from-trace", "--chunk",     "--no-bounds", "no-such.jsonl",
      "serve",         "--stdio",      "--serve-shards", "--ring-capacity", "--overflow",
      "reject",        "drop-oldest",  "block-with-deadline", "--batch",
      "--rta-cache-capacity", "--block-deadline-ms", "--matrix-cache",
      "--flight-recorder", "--flight-capacity", "--window-bucket-ms",
      "--window-buckets",  "--metrics-prom",
  };
  Rng rng{seed};
  std::istringstream in{seed_text};
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(t);
  const int ops = static_cast<int>(rng.uniform_int(1, 3));
  for (int op = 0; op < ops; ++op) {
    switch (rng.uniform_int(0, 3)) {
      case 0:  // insert a vocabulary token
        tokens.insert(tokens.begin() + static_cast<std::ptrdiff_t>(rng.index(tokens.size() + 1)),
                      pick(kPool, rng));
        break;
      case 1:  // delete a token
        if (!tokens.empty())
          tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(rng.index(tokens.size())));
        break;
      case 2:  // replace a token
        if (!tokens.empty()) tokens[rng.index(tokens.size())] = pick(kPool, rng);
        break;
      case 3:  // boundary number in place of a value
        if (!tokens.empty()) tokens[rng.index(tokens.size())] = pick(boundary_numbers(), rng);
        break;
    }
  }
  std::string out;
  for (const auto& tok : tokens) {
    if (!out.empty()) out.push_back(' ');
    out += tok;
  }
  return out;
}

}  // namespace symcan::fuzz

// libFuzzer target for CLI argument parsing and dispatch (build with
// -DSYMCAN_FUZZ=ON). The entry point neutralises path-like and
// output-file tokens, so the fuzzer explores parsing, not the
// filesystem. Findings replay via tests/fuzz/corpus/argv/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_entries.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  symcan::fuzz::check_cli_argv_input(
      std::string_view{reinterpret_cast<const char*>(data), size});
  return 0;
}

#include "fuzz_entries.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/columnar.hpp"
#include "symcan/analysis/prob_rta.hpp"
#include "symcan/analysis/rta_context.hpp"
#include "symcan/can/dbc_import.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/cli/commands.hpp"
#include "symcan/serve/request.hpp"
#include "symcan/sim/trace_export.hpp"
#include "symcan/stream/analyzer.hpp"
#include "symcan/stream/trace_reader.hpp"
#include "symcan/util/diagnostics.hpp"

namespace symcan::fuzz {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw FuzzPropertyViolation{what};
}

/// Parsed matrix must come back iff no error was recorded — the two
/// failure signals may never disagree.
void require_consistent(const std::optional<KMatrix>& km, const Diagnostics& diags) {
  require(km.has_value() == diags.ok(),
          "loader returned " + std::string(km ? "a matrix" : "nullopt") + " but recorded " +
              std::to_string(diags.error_count()) + " error(s)");
}

/// Strict escalates warnings, so it must fail on a superset of the
/// inputs lenient fails on.
void require_strict_superset(bool lenient_ok, bool strict_ok) {
  require(!(strict_ok && !lenient_ok), "strict accepted an input lenient rejected");
}

/// An accepted matrix must survive export -> import bit-identically.
void require_roundtrip(const KMatrix& km) {
  const std::string csv = kmatrix_to_csv(km);
  Diagnostics diags{DiagnosticPolicy::kLenient};
  const auto back = kmatrix_from_csv(csv, diags);
  require(back.has_value(), "exported matrix failed to re-import:\n" + diags.format());
  require(kmatrix_to_csv(*back) == csv, "CSV round trip is not bit-identical");
}

/// Bounded RTA over an accepted matrix: with saturating time arithmetic
/// the fixed point either converges or hits the horizon — never wraps,
/// never throws. Skipped for matrices where the iteration count itself
/// would be unbounded for the harness (sub-100us periods, huge fleets).
void require_bounded_rta(const KMatrix& km) {
  if (km.size() > 64) return;
  for (const auto& m : km.messages())
    if (m.period < Duration::us(100)) return;
  CanRtaConfig cfg;
  cfg.horizon = Duration::ms(10);
  const BusResult res = CanRta{km, cfg}.analyze();
  for (const auto& m : res.messages) {
    require(m.wcrt >= Duration::zero(), "negative wcrt for " + m.name + " (arithmetic wrap)");
    require(m.busy_period >= Duration::zero(), "negative busy period for " + m.name);
  }
}

/// The pack must emit a structurally sound CSR image of the matrix: one
/// scalar row per message, monotonic index rows closed by the column
/// lengths, and all four hp lanes in lockstep. A malformed layout would
/// make the per-field solve comparison below read garbage, so it is
/// checked first with its own messages.
void require_packed_layout(const analysis::ColumnarBus& bus, std::size_t n) {
  require(bus.size() == n, "pack emitted " + std::to_string(bus.size()) + " scalar rows for " +
                               std::to_string(n) + " messages");
  require(bus.hp_begin.size() == n + 1, "hp_begin is not n+1 rows");
  require(bus.tt_begin.size() == n + 1, "tt_begin is not n+1 rows");
  require(bus.hp_begin.front() == 0 && bus.tt_begin.front() == 0, "CSR index rows must start at 0");
  for (std::size_t i = 0; i < n; ++i) {
    require(bus.hp_begin[i] <= bus.hp_begin[i + 1], "hp_begin is not monotonic");
    require(bus.tt_begin[i] <= bus.tt_begin[i + 1], "tt_begin is not monotonic");
  }
  require(bus.hp_begin.back() == bus.hp_period.size(), "hp_begin does not close the hp columns");
  require(bus.tt_begin.back() == bus.tt_groups.size(), "tt_begin does not close the group column");
  require(bus.hp_period.size() == bus.hp_jitter.size() &&
              bus.hp_period.size() == bus.hp_dmin.size() &&
              bus.hp_period.size() == bus.hp_cost.size(),
          "hp lanes have diverging lengths");
}

/// Bit-exactness of the columnar core against the object-graph solver,
/// per message and per field, on an accepted matrix under one config.
void require_columnar_differential(const KMatrix& km, const CanRtaConfig& cfg) {
  const analysis::ColumnarBus bus = analysis::pack_bus(km, cfg);
  require_packed_layout(bus, km.size());
  for (std::size_t i = 0; i < km.size(); ++i) {
    const MessageResult ref = analysis::solve_message(analysis::build_message_context(km, cfg, i));
    const MessageResult col = analysis::solve_columnar(bus, i);
    const std::string who = "message " + km.messages()[i].name + ": columnar ";
    require(col.wcrt == ref.wcrt, who + "wcrt diverged from legacy");
    require(col.bcrt == ref.bcrt, who + "bcrt diverged from legacy");
    require(col.deadline == ref.deadline, who + "deadline diverged from legacy");
    require(col.blocking == ref.blocking, who + "blocking diverged from legacy");
    require(col.busy_period == ref.busy_period, who + "busy period diverged from legacy");
    require(col.instances == ref.instances, who + "instance count diverged from legacy");
    require(col.fixedpoint_iterations == ref.fixedpoint_iterations,
            who + "iteration count diverged from legacy");
    require(col.schedulable == ref.schedulable, who + "schedulability diverged from legacy");
    require(col.diverged == ref.diverged, who + "divergence flag diverged from legacy");
  }
}

}  // namespace

void check_dbc_input(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto km = kmatrix_from_dbc(text, {}, lenient);
  require_consistent(km, lenient);
  Diagnostics strict{DiagnosticPolicy::kStrict};
  const auto km_strict = kmatrix_from_dbc(text, {}, strict);
  require_consistent(km_strict, strict);
  require_strict_superset(km.has_value(), km_strict.has_value());
  if (km) {
    require_roundtrip(*km);
    require_bounded_rta(*km);
  }
}

void check_kmatrix_csv_input(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto km = kmatrix_from_csv(text, lenient);
  require_consistent(km, lenient);
  Diagnostics strict{DiagnosticPolicy::kStrict};
  const auto km_strict = kmatrix_from_csv(text, strict);
  require_consistent(km_strict, strict);
  require_strict_superset(km.has_value(), km_strict.has_value());
  if (km) {
    require_roundtrip(*km);
    require_bounded_rta(*km);
  }
}

void check_columnar_pack(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto km = kmatrix_from_csv(text, lenient);
  require_consistent(km, lenient);
  if (!km) return;  // malformed input diagnosed — that's a pass
  // Same harness bounds as require_bounded_rta: the differential runs
  // 2 x n legacy solves, so hostile periods would make it unbounded.
  if (km->size() > 64) return;
  for (const auto& m : km->messages())
    if (m.period < Duration::us(100)) return;

  CanRtaConfig cfg;
  cfg.horizon = Duration::ms(10);
  require_columnar_differential(*km, cfg);

  // Invert every assumption the pack resolves differently: unstuffed
  // costs, offset-blind groups, no controller-queue blocking, and the
  // worst-case deadline override.
  cfg.worst_case_stuffing = false;
  cfg.use_offsets = false;
  cfg.model_controller_queues = false;
  cfg.deadline_override = DeadlinePolicy::kMinReArrival;
  require_columnar_differential(*km, cfg);
}

void check_prob_rta(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto km = kmatrix_from_csv(text, lenient);
  require_consistent(km, lenient);
  if (!km) return;  // malformed input diagnosed — that's a pass
  // Same harness bounds as require_bounded_rta, plus a short ladder so a
  // hostile error model cannot make the rung count itself unbounded.
  if (km->size() > 64) return;
  for (const auto& m : km->messages())
    if (m.period < Duration::us(100)) return;

  ProbRtaConfig cfg;
  cfg.rta.horizon = Duration::ms(10);
  cfg.max_rungs = 16;

  // Degenerate gate: the all-certain defaults reproduce the
  // deterministic engine bit for bit, point mass at the WCRT included.
  const ProbBusResult degenerate = analysis::analyze_prob(*km, cfg);
  const BusResult det = CanRta{*km, cfg.rta}.analyze();
  require(degenerate.messages.size() == det.messages.size(),
          "probabilistic analysis dropped or invented messages");
  for (std::size_t i = 0; i < det.messages.size(); ++i) {
    const MessageResult& d = det.messages[i];
    const MessageResult& p = degenerate.messages[i].det;
    const std::string who = "message " + d.name + ": degenerate prob ";
    require(p.wcrt == d.wcrt, who + "wcrt diverged from deterministic");
    require(p.bcrt == d.bcrt, who + "bcrt diverged from deterministic");
    require(p.deadline == d.deadline, who + "deadline diverged from deterministic");
    require(p.blocking == d.blocking, who + "blocking diverged from deterministic");
    require(p.busy_period == d.busy_period, who + "busy period diverged from deterministic");
    require(p.instances == d.instances, who + "instance count diverged from deterministic");
    require(p.fixedpoint_iterations == d.fixedpoint_iterations,
            who + "iteration count diverged from deterministic");
    require(p.schedulable == d.schedulable, who + "schedulability diverged from deterministic");
    require(p.diverged == d.diverged, who + "divergence flag diverged from deterministic");
    if (!d.diverged) {
      require(degenerate.messages[i].response.degenerate(),
              who + "distribution is not a point mass");
      require(degenerate.messages[i].response.max_value() == d.wcrt,
              who + "point mass is not at the WCRT");
    }
    require(degenerate.messages[i].miss_weight ==
                (d.schedulable ? std::uint64_t{0} : analysis::Pmf::kOne),
            who + "miss weight disagrees with the binary verdict");
  }

  // A fuzzed interior fault probability (FNV-1a over the input bytes) so
  // the corpus explores the ppm range, not just the 0 / 10^6 rails.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  const std::int64_t fuzzed_ppm = static_cast<std::int64_t>(h % 999'999) + 1;

  // Tail monotonicity in fault probability, with the documented residue
  // tolerance of ~8*(k+1)^2 ulps per k-rung ladder. The upper support
  // point stays pinned at the deterministic WCRT throughout.
  std::vector<std::int64_t> ppms = {0, fuzzed_ppm / 2, fuzzed_ppm, 1'000'000};
  std::sort(ppms.begin(), ppms.end());
  std::vector<std::uint64_t> prev(km->size(), 0);
  for (const std::int64_t ppm : ppms) {
    cfg.fault_ppm = ppm;
    const ProbBusResult res = analysis::analyze_prob(*km, cfg);
    for (std::size_t i = 0; i < res.messages.size(); ++i) {
      const auto& m = res.messages[i];
      std::uint64_t total = 0;
      for (const auto& atom : m.response.atoms()) total += atom.weight;
      require(total == analysis::Pmf::kOne,
              "message " + m.det.name + ": mass leaked (sum != kOne)");
      if (!m.det.diverged)
        require(m.response.max_value() == m.det.wcrt,
                "message " + m.det.name + ": upper support point moved off the WCRT");
      const std::uint64_t k = m.rungs.size();
      const std::uint64_t tol = 8 * (k + 1) * (k + 1);
      require(m.miss_weight + tol >= prev[i],
              "message " + m.det.name + ": miss weight not monotone in fault_ppm at " +
                  std::to_string(ppm));
      prev[i] = m.miss_weight;
    }
  }
}

std::vector<std::string> sanitize_argv(std::string_view data) {
  std::vector<std::string> argv;
  std::string cur;
  const auto flush = [&] {
    if (cur.empty()) return;
    // Neutralise tokens that would read arbitrary filesystem paths (a
    // token "/dev/zero" must not hang the harness) and clamp numeric
    // tokens so --millis/--messages cannot turn one input into a
    // minutes-long run. Output-file options are dropped entirely.
    if (cur.front() == '/' || cur.find("..") != std::string::npos) cur = "no-such-file";
    bool numeric = true;
    for (std::size_t i = cur.front() == '-' ? 1 : 0; i < cur.size(); ++i)
      if (!std::isdigit(static_cast<unsigned char>(cur[i]))) numeric = false;
    if (numeric && cur.size() > 3) cur.resize(3);
    argv.push_back(std::move(cur));
    cur.clear();
  };
  for (const char c : data) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
      flush();
    else
      cur.push_back(c);
  }
  flush();
  static const char* kWriters[] = {"--out",        "--trace-out",   "--metrics-out",
                                   "--stats-json", "--trace-jsonl", "--trace-chrome",
                                   "--events-jsonl"};
  std::vector<std::string> out;
  for (std::size_t i = 0; i < argv.size() && out.size() < 16; ++i) {
    bool writer = false;
    for (const char* w : kWriters) writer = writer || argv[i] == w;
    if (writer) {
      ++i;  // skip the option and its value
      continue;
    }
    out.push_back(argv[i]);
  }
  return out;
}

void check_cli_argv_input(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const auto argv = sanitize_argv(data);
  // An empty request stream, so a fuzzed "serve --stdio" serves zero
  // requests and returns instead of waiting on the harness's stdin.
  std::istringstream in;
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run_cli(argv, in, out, err);  // nothing may escape
  require(rc == 0 || rc == 1 || rc == 2, "run_cli returned exit code " + std::to_string(rc));
}

void check_serve_request_input(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string line = text.substr(start, nl == std::string::npos ? nl : nl - start);
    start = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    Diagnostics lenient{DiagnosticPolicy::kLenient, "serve request"};
    const auto req = serve::request_from_jsonl(line, line_no, lenient);
    require(req.has_value() == lenient.ok(),
            "serve request parser returned " + std::string(req ? "a request" : "nullopt") +
                " but recorded " + std::to_string(lenient.error_count()) + " error(s)");
    Diagnostics strict{DiagnosticPolicy::kStrict, "serve request"};
    const auto req_strict = serve::request_from_jsonl(line, line_no, strict);
    require(req_strict.has_value() == strict.ok(), "strict serve request parser is inconsistent");
    require_strict_superset(req.has_value(), req_strict.has_value());
    if (!req) continue;

    // parse ∘ serialize ∘ parse must be the identity on accepted
    // requests, and the canonical spelling a fixed point.
    const std::string wire = serve::request_to_jsonl(*req);
    Diagnostics again{DiagnosticPolicy::kLenient, "serve request"};
    const auto back = serve::request_from_jsonl(wire, line_no, again);
    require(back.has_value(),
            "canonical form of an accepted request failed to re-parse:\n" + again.format());
    require(*back == *req, "serialize/parse round trip changed the request: " + wire);
    require(serve::request_to_jsonl(*back) == wire,
            "canonical spelling is not a fixed point: " + wire);
  }
}

void check_trace_jsonl_input(std::string_view data) {
  if (data.size() > kMaxInputBytes) return;
  const std::string text{data};
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  const auto trace = stream::trace_from_jsonl(text, lenient);
  require(trace.has_value() == lenient.ok(),
          "trace reader returned " + std::string(trace ? "a trace" : "nullopt") +
              " but recorded " + std::to_string(lenient.error_count()) + " error(s)");
  Diagnostics strict{DiagnosticPolicy::kStrict};
  const auto trace_strict = stream::trace_from_jsonl(text, strict);
  require(trace_strict.has_value() == strict.ok(), "strict trace reader is inconsistent");
  require_strict_superset(trace.has_value(), trace_strict.has_value());
  if (!trace) return;

  // parse ∘ serialize ∘ parse must be the identity on event lists.
  const std::string serialized = trace_to_jsonl(*trace);
  Diagnostics again_diags{DiagnosticPolicy::kLenient};
  const auto again = stream::trace_from_jsonl(serialized, again_diags);
  require(again.has_value(),
          "serialized form of an accepted trace failed to re-parse:\n" + again_diags.format());
  const auto& a = trace->events();
  const auto& b = again->events();
  require(a.size() == b.size(), "round trip changed the event count");
  for (std::size_t i = 0; i < a.size(); ++i)
    require(a[i].time == b[i].time && a[i].type == b[i].type && a[i].message == b[i].message &&
                a[i].instance == b[i].instance,
            "round trip changed event " + std::to_string(i));

  // Any accepted trace must stream through the analyzer without throwing
  // — saturating time math, bounded event log, fixed in-flight slots.
  stream::StreamAnalyzer an;
  an.ingest(*trace);
  if (!a.empty()) an.advance_to(a.back().time);
  require(an.frames_ingested() == static_cast<std::int64_t>(a.size()),
          "analyzer lost frames during ingest");
  const stream::StreamStats stats = an.stats();
  require(stats.frames == an.frames_ingested(), "stats disagree with the frame counter");
}

}  // namespace symcan::fuzz

// Deterministic fuzzing of the ingest layer over the committed corpus.
//
// Every corpus file is fed to its shared entry point verbatim, then a
// fixed range of seeded structure-aware mutations of it is fed as well —
// so the suite explores hostile neighborhoods of both well-formed and
// already-malformed inputs, and any failure replays from (file, seed)
// with no stored artifacts. The same entry points back the libFuzzer
// targets built under -DSYMCAN_FUZZ=ON.
//
// Labelled `fuzz` in ctest so CI can run exactly this suite under
// ASan/UBSan as the fuzz-smoke gate.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "fuzz_entries.hpp"
#include "fuzz_mutators.hpp"
#include "symcan/cli/commands.hpp"
#include "symcan/util/csv.hpp"

namespace symcan::fuzz {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMutationsPerSeed = 60;

std::vector<fs::path> corpus_files(const char* subdir) {
  const fs::path dir = fs::path{SYMCAN_FUZZ_CORPUS_DIR} / subdir;
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator{dir})
    if (e.is_regular_file()) files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

bool is_malformed_fixture(const fs::path& p) {
  return p.filename().string().rfind("bad_", 0) == 0;
}

TEST(FuzzCorpus, DbcCorpusVerbatim) {
  const auto files = corpus_files("dbc");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_dbc_input(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, CsvCorpusVerbatim) {
  const auto files = corpus_files("csv");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_kmatrix_csv_input(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, ColumnarCorpusVerbatim) {
  const auto files = corpus_files("columnar");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_columnar_pack(read_file(f.string()))) << f;
}

// The shared CSV corpus is also valid columnar input — every accepted
// matrix anywhere in the corpus must pack and solve bit-identically.
TEST(FuzzCorpus, ColumnarHoldsOnCsvCorpus) {
  for (const auto& f : corpus_files("csv"))
    ASSERT_NO_THROW(check_columnar_pack(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, ProbCorpusVerbatim) {
  const auto files = corpus_files("prob");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_prob_rta(read_file(f.string()))) << f;
}

// The shared CSV corpus is also valid probabilistic input — the
// degenerate gate and monotone tails must hold on every accepted matrix
// anywhere in the corpus.
TEST(FuzzCorpus, ProbHoldsOnCsvCorpus) {
  for (const auto& f : corpus_files("csv"))
    ASSERT_NO_THROW(check_prob_rta(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, ArgvCorpusVerbatim) {
  const auto files = corpus_files("argv");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_cli_argv_input(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, ServeCorpusVerbatim) {
  const auto files = corpus_files("serve");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_serve_request_input(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, TraceCorpusVerbatim) {
  const auto files = corpus_files("trace");
  ASSERT_FALSE(files.empty());
  for (const auto& f : files)
    ASSERT_NO_THROW(check_trace_jsonl_input(read_file(f.string()))) << f;
}

TEST(FuzzCorpus, DbcMutationStorm) {
  for (const auto& f : corpus_files("dbc")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_dbc_input(mutate_dbc(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_dbc(seed_text, seed);
  }
}

TEST(FuzzCorpus, CsvMutationStorm) {
  for (const auto& f : corpus_files("csv")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_kmatrix_csv_input(mutate_csv(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_csv(seed_text, seed);
  }
}

TEST(FuzzCorpus, ColumnarMutationStorm) {
  for (const auto& f : corpus_files("columnar")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_columnar_pack(mutate_csv(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_csv(seed_text, seed);
  }
}

TEST(FuzzCorpus, ProbMutationStorm) {
  for (const auto& f : corpus_files("prob")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_prob_rta(mutate_csv(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_csv(seed_text, seed);
  }
}

TEST(FuzzCorpus, ArgvMutationStorm) {
  for (const auto& f : corpus_files("argv")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_cli_argv_input(mutate_argv(seed_text, seed)))
          << f << " seed " << seed << ": " << mutate_argv(seed_text, seed);
  }
}

TEST(FuzzCorpus, TraceMutationStorm) {
  for (const auto& f : corpus_files("trace")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_trace_jsonl_input(mutate_trace_jsonl(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_trace_jsonl(seed_text, seed);
  }
}

TEST(FuzzCorpus, ServeMutationStorm) {
  for (const auto& f : corpus_files("serve")) {
    const std::string seed_text = read_file(f.string());
    for (std::uint64_t seed = 1; seed <= kMutationsPerSeed; ++seed)
      ASSERT_NO_THROW(check_serve_request_input(mutate_serve_jsonl(seed_text, seed)))
          << f << " seed " << seed << "\n--- mutated input ---\n"
          << mutate_serve_jsonl(seed_text, seed);
  }
}

// The service's trust boundary: any corpus stream fed through `serve
// --stdio` leaves the service alive (exit 0), and the malformed fixture
// yields structured invalid responses with line numbers instead of a
// dropped connection.
TEST(FuzzCorpus, ServeStdioSurvivesEveryCorpusStream) {
  std::size_t malformed_checked = 0;
  for (const auto& f : corpus_files("serve")) {
    std::istringstream in{read_file(f.string())};
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::run_cli({"serve", "--stdio"}, in, out, err), 0) << f;
    if (is_malformed_fixture(f)) {
      EXPECT_NE(out.str().find("\"status\":\"invalid\""), std::string::npos) << f;
      EXPECT_NE(out.str().find("\"line\":"), std::string::npos) << f;
      ++malformed_checked;
    }
  }
  EXPECT_GE(malformed_checked, 1u);
}

// Every malformed fixture, loaded through the real CLI, must exit 2 with
// at least one line-numbered diagnostic on stderr — the ingest contract
// the README documents.
TEST(FuzzCorpus, MalformedFixturesExitTwoWithLineDiagnostics) {
  std::size_t checked = 0;
  for (const char* subdir : {"dbc", "csv"}) {
    for (const auto& f : corpus_files(subdir)) {
      if (!is_malformed_fixture(f)) continue;
      std::ostringstream out;
      std::ostringstream err;
      std::vector<std::string> argv = {"analyze", f.string()};
      if (std::string{subdir} == "dbc") argv.push_back("--dbc");
      EXPECT_EQ(cli::run_cli(argv, out, err), 2) << f;
      EXPECT_NE(err.str().find(" line "), std::string::npos)
          << f << ": stderr lacks a line-numbered diagnostic:\n"
          << err.str();
      EXPECT_NE(err.str().find("error"), std::string::npos) << f;
      ++checked;
    }
  }
  EXPECT_GE(checked, 4u);
}

// Same contract for the stream layer's trust boundary: a malformed
// recorded trace fed to `symcan monitor --from-trace` must exit 2 with
// line-numbered diagnostics, and well-formed fixtures must not.
TEST(FuzzCorpus, MalformedTraceFixturesExitTwoThroughMonitor) {
  std::size_t checked = 0;
  for (const auto& f : corpus_files("trace")) {
    std::ostringstream out;
    std::ostringstream err;
    const int rc =
        cli::run_cli({"monitor", SYMCAN_CASE_STUDY_CSV, "--from-trace", f.string()}, out, err);
    if (is_malformed_fixture(f)) {
      EXPECT_EQ(rc, 2) << f;
      EXPECT_NE(err.str().find(" line "), std::string::npos)
          << f << ": stderr lacks a line-numbered diagnostic:\n"
          << err.str();
      EXPECT_NE(err.str().find("error"), std::string::npos) << f;
      ++checked;
    } else {
      EXPECT_TRUE(rc == 0 || rc == 1) << f << " rc=" << rc << "\n" << err.str();
    }
  }
  EXPECT_GE(checked, 1u);
}

// Well-formed fixtures must load cleanly through the CLI (exit 0 or the
// schedulability verdict 1, never the malformed-input 2).
TEST(FuzzCorpus, WellFormedFixturesDoNotExitTwo) {
  for (const char* subdir : {"dbc", "csv"}) {
    for (const auto& f : corpus_files(subdir)) {
      if (f.filename().string().rfind("ok_", 0) != 0) continue;
      std::ostringstream out;
      std::ostringstream err;
      std::vector<std::string> argv = {"analyze", f.string()};
      if (std::string{subdir} == "dbc") argv.push_back("--dbc");
      const int rc = cli::run_cli(argv, out, err);
      EXPECT_TRUE(rc == 0 || rc == 1) << f << " rc=" << rc << "\n" << err.str();
    }
  }
}

// The strict policy must reject the zero-cycle-time fixture that lenient
// accepts with a warning — the policy knob's observable contract.
TEST(FuzzCorpus, StrictEscalatesWarningFixture) {
  const fs::path f = fs::path{SYMCAN_FUZZ_CORPUS_DIR} / "dbc" / "warn_zero_cycle.dbc";
  std::ostringstream out1, err1, out2, err2;
  const int lenient = cli::run_cli({"analyze", f.string(), "--dbc"}, out1, err1);
  const int strict = cli::run_cli({"analyze", f.string(), "--dbc", "--strict"}, out2, err2);
  EXPECT_TRUE(lenient == 0 || lenient == 1) << err1.str();
  EXPECT_EQ(strict, 2) << err2.str();
  // Strict escalates at record time, so the entry renders as an error —
  // the diagnostic text still names the recoverable condition.
  EXPECT_NE(err2.str().find("cycle time"), std::string::npos) << err2.str();
  EXPECT_NE(err2.str().find("error"), std::string::npos) << err2.str();
}

TEST(FuzzCorpus, SanitizerNeutralisesHostileArgvTokens) {
  const auto argv = sanitize_argv("analyze /dev/zero --out ../evil --millis 999999999");
  for (const auto& t : argv) {
    EXPECT_NE(t.front(), '/') << t;
    EXPECT_EQ(t.find(".."), std::string::npos) << t;
    EXPECT_NE(t, "--out");
  }
  // The numeric clamp keeps any duration/count token to at most 3 digits.
  for (const auto& t : argv)
    if (t.find_first_not_of("0123456789") == std::string::npos) EXPECT_LE(t.size(), 3u);
}

}  // namespace
}  // namespace symcan::fuzz

#pragma once

// Shared fuzzing entry points for the ingest layer.
//
// Each check_* function feeds one untrusted input through the
// diagnostics-collecting loaders and asserts the ingest contract:
//
//  * no exception escapes the non-throwing parsers,
//  * a parser returns a matrix if and only if it recorded no error,
//  * strict policy fails on a superset of the inputs lenient fails on,
//  * an accepted matrix survives a bit-identical CSV round trip,
//  * a bounded RTA over an accepted matrix terminates without wrap
//    (hostile parameters saturate to Duration::infinite() instead).
//
// Violations throw FuzzPropertyViolation. The same functions back two
// harnesses: the deterministic corpus test (fuzz_corpus_test.cpp, part of
// the regular suite) and the coverage-guided libFuzzer binaries built
// under -DSYMCAN_FUZZ=ON — so a libFuzzer finding can be replayed as a
// plain unit test by pasting the input into the corpus.

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace symcan::fuzz {

/// A fuzzed input violated an ingest-contract property (not merely "the
/// input was malformed" — malformed inputs must be *diagnosed*, which is
/// a pass).
class FuzzPropertyViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Inputs larger than this are ignored (mirrors the libFuzzer -max_len).
constexpr std::size_t kMaxInputBytes = 1 << 16;

/// Feed one DBC document through kmatrix_from_dbc under both policies.
void check_dbc_input(std::string_view data);

/// Feed one K-Matrix CSV document through kmatrix_from_csv under both
/// policies.
void check_kmatrix_csv_input(std::string_view data);

/// Run one whitespace-separated argv through run_cli. Tokens naming
/// absolute paths or output-file options are neutralised first, so the
/// harness exercises parsing and dispatch without touching the
/// filesystem; the exit code must be 0, 1 or 2 and nothing may escape.
void check_cli_argv_input(std::string_view data);

/// Feed one JSONL trace document through stream::trace_from_jsonl under
/// both policies, then an accepted trace through the StreamAnalyzer.
/// Checks the same contract as the matrix loaders (consistency, strict
/// superset) plus the reader's own: parse ∘ serialize ∘ parse is the
/// identity on event lists, and the analyzer never throws on any
/// accepted trace.
void check_trace_jsonl_input(std::string_view data);

/// Feed one JSONL serve-request stream through request_from_jsonl line
/// by line (as the stdio transport does) under both policies. Checks the
/// shared ingest contract (parse result iff no error, strict superset)
/// plus the wire grammar's own: parse ∘ serialize ∘ parse is the
/// identity on accepted requests and the canonical spelling is a fixed
/// point of serialization.
void check_serve_request_input(std::string_view data);

/// Feed one K-Matrix CSV document through kmatrix_from_csv, then pack an
/// accepted matrix into the columnar solve core and hold it to the
/// layout contract: the CSR structure is well formed (monotonic index
/// rows, equal-length columns) and solve_columnar() is bit-identical to
/// solve_message(build_message_context()) in every field — iteration
/// counts included — under both the default and an inverted assumption
/// set. The fuzzed extension of the layout-differential battery: the
/// seeded tests pin equality on matrices we thought of, this pins it on
/// matrices nobody did. Uses the same size/period bounds as the RTA
/// check so the fixed point stays harness-sized.
void check_columnar_pack(std::string_view data);

/// Feed one K-Matrix CSV document through kmatrix_from_csv, then hold an
/// accepted matrix to the probabilistic-analysis contract: analyze_prob
/// never throws on a valid matrix and bounded config, the degenerate
/// (all-certain) mixture reproduces CanRta::analyze() bit-exactly, the
/// distribution's upper support point is the deterministic WCRT, every
/// weight vector sums to exactly Pmf::kOne, and the deadline-miss weight
/// is monotone in the fault probability (up to the documented fixed-point
/// residue tolerance). The fuzzed fault probability is derived from the
/// input bytes so the corpus explores the interior of the ppm range, not
/// just the rails. Same size/period bounds as the RTA check.
void check_prob_rta(std::string_view data);

/// The argv sanitisation used by check_cli_argv_input, exposed for tests.
std::vector<std::string> sanitize_argv(std::string_view data);

}  // namespace symcan::fuzz

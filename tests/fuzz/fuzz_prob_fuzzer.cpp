// libFuzzer driver for the probabilistic-analysis contract: any CSV the
// loader accepts must satisfy the degenerate differential gate (certain
// mixture == deterministic engine), keep the deterministic WCRT as the
// distribution's upper support point, conserve mass exactly, and keep
// the miss weight monotone in the fault probability. Build with
// -DSYMCAN_FUZZ=ON; seed from tests/fuzz/corpus/prob (the csv corpus
// works too).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_entries.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  symcan::fuzz::check_prob_rta(
      std::string_view{reinterpret_cast<const char*>(data), size});
  return 0;
}

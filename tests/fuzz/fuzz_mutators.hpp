#pragma once

// Deterministic structure-aware mutators for the fuzz harnesses.
//
// Each mutator derives a hostile variant of a well-formed seed input
// using a seeded Rng, so every generated case replays bit-identically
// from (corpus file, seed) — the corpus test sweeps a fixed seed range
// and any failure reproduces with no stored artifacts.
//
// "Structure-aware" means the mutations target the places the ingest
// layer must defend: numeric tokens are swapped for boundary values
// (bit-31 ids, 2^63-1 periods, negatives, overflow-length digit runs),
// separators are doubled or dropped to shift fields, records are
// duplicated, truncated and spliced — rather than flipping raw bytes.

#include <cstdint>
#include <string>
#include <vector>

namespace symcan::fuzz {

/// Boundary numbers every mutator draws from (ids around the 11/29/31/32
/// bit edges, int64 extremes, overflow-length digit strings).
const std::vector<std::string>& boundary_numbers();

/// Mutate a DBC document (line/token oriented).
std::string mutate_dbc(const std::string& seed_text, std::uint64_t seed);

/// Mutate a K-Matrix CSV document (field oriented: doubled commas and
/// semicolons, dropped fields, boundary numbers, quote injection).
std::string mutate_csv(const std::string& seed_text, std::uint64_t seed);

/// Mutate a CLI argv line (token oriented, drawing from the real option
/// vocabulary so dispatch code is reached, not just the tokenizer).
std::string mutate_argv(const std::string& seed_text, std::uint64_t seed);

/// Mutate a JSONL trace document (line oriented: key games, escape
/// torture, boundary timestamps, truncated objects).
std::string mutate_trace_jsonl(const std::string& seed_text, std::uint64_t seed);

/// Mutate a JSONL serve-request stream (line oriented: kind confusion,
/// duplicate/foreign keys, boundary numbers, escape torture, nested
/// containers where scalars belong).
std::string mutate_serve_jsonl(const std::string& seed_text, std::uint64_t seed);

}  // namespace symcan::fuzz

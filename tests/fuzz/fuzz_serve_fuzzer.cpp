// libFuzzer target for the serve request wire grammar (build with
// -DSYMCAN_FUZZ=ON). Shares its entry point with the deterministic
// corpus test, so any finding replays there by adding the input to
// tests/fuzz/corpus/serve/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_entries.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  symcan::fuzz::check_serve_request_input(
      std::string_view{reinterpret_cast<const char*>(data), size});
  return 0;
}

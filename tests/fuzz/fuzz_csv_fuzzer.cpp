// libFuzzer target for the K-Matrix CSV loader (build with
// -DSYMCAN_FUZZ=ON). Shares its entry point with the deterministic
// corpus test; findings replay by adding the input to
// tests/fuzz/corpus/csv/.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_entries.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  symcan::fuzz::check_kmatrix_csv_input(
      std::string_view{reinterpret_cast<const char*>(data), size});
  return 0;
}

// libFuzzer driver for the columnar layout differential: any CSV the
// loader accepts must pack into a well-formed ColumnarBus whose solves
// are bit-identical to the object-graph solver. Build with
// -DSYMCAN_FUZZ=ON; seed from tests/fuzz/corpus/columnar (the csv corpus
// works too).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "fuzz_entries.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  symcan::fuzz::check_columnar_pack(
      std::string_view{reinterpret_cast<const char*>(data), size});
  return 0;
}

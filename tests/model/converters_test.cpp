#include "symcan/model/converters.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

const EventModel periodic = EventModel::periodic(Duration::ms(10));
const EventModel jittery = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(4));
const EventModel bursty =
    EventModel::periodic_burst(Duration::ms(10), Duration::ms(25), Duration::ms(1));
const EventModel sporadic = EventModel::sporadic(Duration::ms(5));

TEST(ToSporadic, ContainsTheOriginal) {
  for (const EventModel& em : {periodic, jittery, bursty, sporadic}) {
    const EventModel s = to_sporadic(em);
    EXPECT_TRUE(s.contains(em)) << em.to_string() << " -> " << s.to_string();
  }
}

TEST(ToSporadic, LosslessForSporadicInput) {
  const EventModel s = to_sporadic(sporadic);
  EXPECT_EQ(s.period(), Duration::ms(5));
  EXPECT_NEAR(adaptation_error(sporadic, s, Duration::ms(200)), 0.0, 1e-12);
}

TEST(ToSporadic, PreservesMinimumDistance) {
  const EventModel s = to_sporadic(bursty);
  EXPECT_EQ(s.period(), Duration::ms(1));  // d_min of the burst model
}

TEST(ToSporadic, CoincidentEventsGetNanosecondFloor) {
  // J >= P with no d_min: events may coincide; the sporadic class floor.
  const EventModel dense = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(25));
  EXPECT_EQ(to_sporadic(dense).period(), Duration::ns(1));
}

TEST(ToPeriodicJitter, ContainsTheOriginal) {
  for (const EventModel& em : {periodic, jittery, bursty}) {
    const EventModel p = to_periodic_jitter(em);
    EXPECT_TRUE(p.contains(em)) << em.to_string();
  }
}

TEST(ToPeriodicJitter, LosslessWithoutBurstLimit) {
  EXPECT_NEAR(adaptation_error(jittery, to_periodic_jitter(jittery), Duration::ms(500)), 0.0,
              1e-12);
}

TEST(ToPeriodicJitter, BurstLimitLossIsVisible) {
  // Dropping d_min admits denser short windows: positive adaptation error.
  EXPECT_GT(adaptation_error(bursty, to_periodic_jitter(bursty), Duration::ms(500)), 0.0);
}

TEST(AbstractionUnion, ContainsBothInputs) {
  const struct {
    EventModel a, b;
  } cases[] = {{periodic, jittery},
               {jittery, bursty},
               {sporadic, periodic},
               {bursty, sporadic},
               {EventModel::periodic(Duration::ms(7)), EventModel::periodic(Duration::ms(13))}};
  for (const auto& c : cases) {
    const EventModel u = abstraction_union(c.a, c.b);
    EXPECT_TRUE(u.contains(c.a)) << u.to_string() << " vs " << c.a.to_string();
    EXPECT_TRUE(u.contains(c.b)) << u.to_string() << " vs " << c.b.to_string();
  }
}

TEST(AbstractionUnion, IdempotentOnEqualInputs) {
  const EventModel u = abstraction_union(jittery, jittery);
  EXPECT_EQ(u.period(), jittery.period());
  EXPECT_EQ(u.jitter(), jittery.jitter());
  EXPECT_NEAR(adaptation_error(jittery, u, Duration::ms(500)), 0.0, 1e-12);
}

TEST(AbstractionUnion, CommutesOnParameters) {
  const EventModel u1 = abstraction_union(jittery, bursty);
  const EventModel u2 = abstraction_union(bursty, jittery);
  EXPECT_EQ(u1.period(), u2.period());
  EXPECT_EQ(u1.jitter(), u2.jitter());
  EXPECT_EQ(u1.min_distance(), u2.min_distance());
}

TEST(AbstractionUnion, TakesTheFasterRate) {
  const EventModel u = abstraction_union(EventModel::periodic(Duration::ms(7)),
                                         EventModel::periodic(Duration::ms(13)));
  // The 7 ms envelope alone dominates the 13 ms stream's eta+ everywhere,
  // so the join needs no extra jitter.
  EXPECT_EQ(u.period(), Duration::ms(7));
  EXPECT_EQ(u.jitter(), Duration::zero());
}

TEST(AdaptationError, ZeroForIdentity) {
  EXPECT_DOUBLE_EQ(adaptation_error(bursty, bursty, Duration::ms(300)), 0.0);
}

TEST(AdaptationError, GrowsWithLooseness) {
  const EventModel loose1 = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(6));
  const EventModel loose2 = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(30));
  const double e1 = adaptation_error(periodic, loose1, Duration::ms(300));
  const double e2 = adaptation_error(periodic, loose2, Duration::ms(300));
  EXPECT_GT(e1, 0.0);
  EXPECT_GT(e2, e1);
}

TEST(AdaptationError, RejectsBadHorizon) {
  EXPECT_THROW(adaptation_error(periodic, jittery, Duration::zero()), std::invalid_argument);
}

/// Property sweep: unions over a model grid always contain both inputs
/// and never report negative adaptation error.
class UnionProperty
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(UnionProperty, ContainmentAndErrorSign) {
  const auto [pa_ms, pb_ms] = GetParam();
  const EventModel a = EventModel::periodic_jitter(Duration::ms(pa_ms), Duration::ms(pa_ms / 3));
  const EventModel b =
      EventModel::periodic_burst(Duration::ms(pb_ms), Duration::ms(pb_ms * 2), Duration::ms(1));
  const EventModel u = abstraction_union(a, b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_GE(adaptation_error(a, u, Duration::ms(400)), 0.0);
  EXPECT_GE(adaptation_error(b, u, Duration::ms(400)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, UnionProperty,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{6, 6},
                                           std::pair<std::int64_t, std::int64_t>{6, 15},
                                           std::pair<std::int64_t, std::int64_t>{20, 5},
                                           std::pair<std::int64_t, std::int64_t>{9, 100}));

}  // namespace
}  // namespace symcan

#include "symcan/model/event_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace symcan {
namespace {

TEST(EventModel, StrictlyPeriodicCounts) {
  const EventModel em = EventModel::periodic(Duration::ms(10));
  EXPECT_EQ(em.eta_plus(Duration::zero()), 0);
  EXPECT_EQ(em.eta_plus(Duration::ns(1)), 1);
  EXPECT_EQ(em.eta_plus(Duration::ms(10)), 1);
  EXPECT_EQ(em.eta_plus(Duration::ms(10) + Duration::ns(1)), 2);
  EXPECT_EQ(em.eta_plus(Duration::ms(95)), 10);
  EXPECT_EQ(em.eta_minus(Duration::ms(95)), 9);
  EXPECT_EQ(em.eta_minus(Duration::ms(9)), 0);
}

TEST(EventModel, JitterInflatesEtaPlus) {
  const EventModel em = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(4));
  // Window of 7 ms: ceil((7+4)/10) = 2 events possible.
  EXPECT_EQ(em.eta_plus(Duration::ms(7)), 2);
  // eta- shrinks: floor((7-4)/10) = 0.
  EXPECT_EQ(em.eta_minus(Duration::ms(7)), 0);
  EXPECT_EQ(em.eta_minus(Duration::ms(24)), 2);
}

TEST(EventModel, BurstyModelLimitedByMinDistance) {
  // J = 25 ms >= P = 10 ms: bursts of up to 3 events, at least 1 ms apart.
  const EventModel em = EventModel::periodic_burst(Duration::ms(10), Duration::ms(25),
                                                   Duration::ms(1));
  EXPECT_TRUE(em.is_bursty());
  EXPECT_EQ(em.max_burst_size(), 4);  // ceil(25/10) + 1
  // Tiny window: d_min limits to 2 events (one at each end of 1ms+).
  EXPECT_EQ(em.eta_plus(Duration::ms(1)), 2);
  EXPECT_EQ(em.eta_plus(Duration::us(500)), 2);
  // Large window: periodic term dominates.
  EXPECT_EQ(em.eta_plus(Duration::ms(100)), 13);
}

TEST(EventModel, SporadicIsPeriodicWithDminEqualsP) {
  const EventModel em = EventModel::sporadic(Duration::ms(5));
  EXPECT_FALSE(em.is_bursty());
  EXPECT_EQ(em.eta_plus(Duration::ms(5)), 1);
  EXPECT_EQ(em.eta_plus(Duration::ms(6)), 2);
}

TEST(EventModel, DeltaMinMax) {
  const EventModel em = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(3));
  EXPECT_EQ(em.delta_min(0), Duration::zero());
  EXPECT_EQ(em.delta_min(1), Duration::zero());
  EXPECT_EQ(em.delta_min(2), Duration::ms(7));
  EXPECT_EQ(em.delta_min(3), Duration::ms(17));
  EXPECT_EQ(em.delta_max(2), Duration::ms(13));
  EXPECT_EQ(em.delta_max(3), Duration::ms(23));
}

TEST(EventModel, DeltaMinClampedAtZeroForLargeJitter) {
  const EventModel em = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(25));
  EXPECT_EQ(em.delta_min(2), Duration::zero());
  EXPECT_EQ(em.delta_min(3), Duration::zero());
  EXPECT_EQ(em.delta_min(4), Duration::ms(5));
}

TEST(EventModel, WithAddedJitterAccumulates) {
  const EventModel em = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(2));
  const EventModel out = em.with_added_jitter(Duration::ms(3));
  EXPECT_EQ(out.period(), Duration::ms(10));
  EXPECT_EQ(out.jitter(), Duration::ms(5));
}

TEST(EventModel, DminClampedToPeriod) {
  const EventModel em =
      EventModel::periodic_burst(Duration::ms(10), Duration::zero(), Duration::ms(50));
  EXPECT_EQ(em.min_distance(), Duration::ms(10));
}

TEST(EventModel, InvalidArgumentsThrow) {
  EXPECT_THROW(EventModel::periodic(Duration::zero()), std::invalid_argument);
  EXPECT_THROW(EventModel::periodic(-Duration::ms(1)), std::invalid_argument);
  EXPECT_THROW(EventModel::periodic_jitter(Duration::ms(1), -Duration::ms(1)),
               std::invalid_argument);
  EXPECT_THROW(EventModel::periodic_burst(Duration::ms(1), Duration::zero(), -Duration::ms(1)),
               std::invalid_argument);
}

TEST(EventModel, ContainsAcceptsSelfAndLooserJitter) {
  const EventModel tight = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(1));
  const EventModel loose = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(5));
  EXPECT_TRUE(tight.contains(tight));
  EXPECT_TRUE(loose.contains(tight));   // looser admits tighter traces
  EXPECT_FALSE(tight.contains(loose));  // tighter cannot admit looser
}

TEST(EventModel, ContainsRejectsHigherRate) {
  const EventModel slow = EventModel::periodic(Duration::ms(20));
  const EventModel fast = EventModel::periodic(Duration::ms(10));
  EXPECT_FALSE(slow.contains(fast));
  EXPECT_TRUE(fast.contains(fast));
}

TEST(EventModel, ToStringMentionsParameters) {
  const EventModel em = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(2));
  const std::string s = em.to_string();
  EXPECT_NE(s.find("P="), std::string::npos);
  EXPECT_NE(s.find("J="), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property sweeps over a grid of models.

struct ModelParam {
  std::int64_t period_us;
  std::int64_t jitter_us;
  std::int64_t dmin_us;
};

class EventModelProperty : public ::testing::TestWithParam<ModelParam> {
 protected:
  EventModel model() const {
    const auto p = GetParam();
    return EventModel::periodic_burst(Duration::us(p.period_us), Duration::us(p.jitter_us),
                                      Duration::us(p.dmin_us));
  }
  std::vector<Duration> windows() const {
    const auto p = GetParam();
    std::vector<Duration> w;
    for (std::int64_t k : {1, 2, 3, 5, 7, 10, 13, 20, 50})
      w.push_back(Duration::us(p.period_us * k / 4 + k));
    return w;
  }
};

TEST_P(EventModelProperty, EtaPlusIsMonotone) {
  const EventModel em = model();
  std::int64_t prev = 0;
  for (Duration w = Duration::zero(); w <= Duration::ms(50); w += Duration::us(173)) {
    const std::int64_t v = em.eta_plus(w);
    EXPECT_GE(v, prev) << "at window " << to_string(w);
    prev = v;
  }
}

TEST_P(EventModelProperty, EtaMinusNeverExceedsEtaPlus) {
  const EventModel em = model();
  for (const Duration w : windows()) EXPECT_LE(em.eta_minus(w), em.eta_plus(w));
}

TEST_P(EventModelProperty, DeltaMinIsPseudoInverseOfEtaPlus) {
  const EventModel em = model();
  // n events fit into any window marginally larger than delta_min(n).
  for (std::int64_t n = 2; n <= 12; ++n) {
    const Duration span = em.delta_min(n);
    EXPECT_GE(em.eta_plus(span + Duration::ns(1)), n) << "n=" << n;
    // And delta_min is the *minimum* span: a window strictly inside it
    // cannot hold n events. Only exact when the periodic term determines
    // delta_min — the standard ceil(dt/d_min)+1 burst bound is
    // deliberately conservative for sub-d_min windows.
    const Duration periodic_span = (n - 1) * em.period() - em.jitter();
    const Duration burst_span = (n - 1) * em.min_distance();
    if (span > Duration::ns(1) && periodic_span > burst_span)
      EXPECT_LT(em.eta_plus(span - Duration::ns(1)), n) << "n=" << n;
  }
}

TEST_P(EventModelProperty, DeltaMinMonotoneInN) {
  const EventModel em = model();
  for (std::int64_t n = 2; n <= 20; ++n) EXPECT_LE(em.delta_min(n - 1), em.delta_min(n));
}

TEST_P(EventModelProperty, DeltaMaxDominatesDeltaMin) {
  const EventModel em = model();
  for (std::int64_t n = 2; n <= 20; ++n) EXPECT_GE(em.delta_max(n), em.delta_min(n));
}

TEST_P(EventModelProperty, AddedJitterOnlyIncreasesEtaPlus) {
  const EventModel em = model();
  const EventModel inflated = em.with_added_jitter(Duration::us(500));
  for (const Duration w : windows()) EXPECT_GE(inflated.eta_plus(w), em.eta_plus(w));
}

TEST_P(EventModelProperty, LongRunRateMatchesPeriod) {
  const EventModel em = model();
  const Duration horizon = em.period() * 1000;
  const std::int64_t n = em.eta_plus(horizon);
  // Rate over a long horizon approaches 1/P (within the jitter carryover).
  EXPECT_NEAR(static_cast<double>(n), 1000.0, 3.0 + em.jitter().as_ms() / em.period().as_ms());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EventModelProperty,
    ::testing::Values(ModelParam{10'000, 0, 0}, ModelParam{10'000, 3'000, 0},
                      ModelParam{10'000, 12'000, 0}, ModelParam{10'000, 12'000, 1'000},
                      ModelParam{5'000, 45'000, 500}, ModelParam{1'000, 0, 1'000},
                      ModelParam{20'000, 6'000, 2'000}, ModelParam{100'000, 30'000, 0}));

}  // namespace
}  // namespace symcan

#include "symcan/model/task.hpp"

#include <gtest/gtest.h>

namespace symcan {
namespace {

TEST(Task, EffectiveSegmentDefaultsToWcet) {
  Task t;
  t.wcet = Duration::ms(4);
  EXPECT_EQ(t.effective_segment(), Duration::ms(4));
}

TEST(Task, EffectiveSegmentUsesMaxSegmentWhenSmaller) {
  Task t;
  t.wcet = Duration::ms(4);
  t.max_segment = Duration::ms(1);
  EXPECT_EQ(t.effective_segment(), Duration::ms(1));
}

TEST(Task, EffectiveSegmentClampedToWcet) {
  Task t;
  t.wcet = Duration::ms(4);
  t.max_segment = Duration::ms(9);
  EXPECT_EQ(t.effective_segment(), Duration::ms(4));
}

TEST(SchedClass, ToStringNames) {
  EXPECT_STREQ(to_string(SchedClass::kInterrupt), "interrupt");
  EXPECT_STREQ(to_string(SchedClass::kPreemptiveTask), "preemptive");
  EXPECT_STREQ(to_string(SchedClass::kCooperativeTask), "cooperative");
}

TEST(Task, DefaultsAreSane) {
  Task t;
  EXPECT_EQ(t.sched, SchedClass::kPreemptiveTask);
  EXPECT_TRUE(t.deadline.is_infinite());
  EXPECT_EQ(t.os_overhead, Duration::zero());
}

}  // namespace
}  // namespace symcan

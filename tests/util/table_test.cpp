#include "symcan/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace symcan {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  // Columns align: "a" padded to the width of "longer".
  EXPECT_NE(out.find("a       1"), std::string::npos);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable t;
  t.row({"a"});
  t.row({"b", "c", "d"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("d"), std::string::npos);
}

TEST(TextTable, RowCount) {
  TextTable t;
  EXPECT_EQ(t.row_count(), 0u);
  t.row({"x"});
  t.row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Strprintf, FormatsLikePrintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(AsciiBar, ScalesAndClamps) {
  EXPECT_EQ(ascii_bar(5, 10, 10), "#####");
  EXPECT_EQ(ascii_bar(10, 10, 4), "####");
  EXPECT_EQ(ascii_bar(20, 10, 4), "####");  // clamped
  EXPECT_EQ(ascii_bar(-1, 10, 4), "");
  EXPECT_EQ(ascii_bar(1, 0, 4), "");  // degenerate max
}

}  // namespace
}  // namespace symcan

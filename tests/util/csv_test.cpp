#include "symcan/util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace symcan {
namespace {

TEST(ParseCsvLine, SimpleFields) {
  const CsvRow row = parse_csv_line("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[1], "b");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLine, EmptyFields) {
  const CsvRow row = parse_csv_line("a,,c,");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "");
  EXPECT_EQ(row[3], "");
}

TEST(ParseCsvLine, QuotedCommaAndQuote) {
  const CsvRow row = parse_csv_line(R"("a,b","say ""hi""",c)");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a,b");
  EXPECT_EQ(row[1], "say \"hi\"");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  const CsvRow row = parse_csv_line("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(ParseCsv, SkipsCommentsAndBlankLines) {
  const auto rows = parse_csv("# comment\na,b\n\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][1], "d");
}

TEST(ParseCsv, HandlesMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "c");
}

TEST(FormatCsvRow, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(format_csv_row({"a", "b"}), "a,b");
  EXPECT_EQ(format_csv_row({"a,b"}), "\"a,b\"");
  EXPECT_EQ(format_csv_row({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(format_csv_row({" padded "}), "\" padded \"");
}

TEST(FormatCsvRow, RoundTripsThroughParse) {
  const CsvRow original = {"plain", "with,comma", "with \"quote\"", ""};
  const CsvRow parsed = parse_csv_line(format_csv_row(original));
  EXPECT_EQ(parsed, original);
}

TEST(FileIo, WriteThenReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/symcan_csv_test.txt";
  write_file(path, "hello\nworld");
  EXPECT_EQ(read_file(path), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/definitely/missing.csv"), std::runtime_error);
}

TEST(FileIo, WriteToBadPathThrows) {
  EXPECT_THROW(write_file("/nonexistent/dir/out.csv", "x"), std::runtime_error);
}

}  // namespace
}  // namespace symcan

#include "symcan/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace symcan {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformRealStaysInRange) {
  Rng r{9};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, UniformDurationInclusive) {
  Rng r{11};
  for (int i = 0; i < 500; ++i) {
    const Duration d = r.uniform_duration(Duration::us(10), Duration::us(20));
    EXPECT_GE(d, Duration::us(10));
    EXPECT_LE(d, Duration::us(20));
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, IndexBounds) {
  Rng r{17};
  for (int i = 0; i < 500; ++i) EXPECT_LT(r.index(7), 7u);
}

TEST(Rng, ExponentialIsNonNegativeAndRoughlyMean) {
  Rng r{19};
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const Duration d = r.exponential(Duration::ms(10));
    EXPECT_GE(d, Duration::zero());
    sum += d.as_ms();
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng r{23};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{31};
  Rng child = a.fork();
  // The child should not replay the parent's stream.
  Rng b{31};
  b.fork();
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (child.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  EXPECT_LT(same, 50);
}

}  // namespace
}  // namespace symcan

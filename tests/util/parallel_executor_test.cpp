#include "symcan/util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace symcan {
namespace {

std::vector<int> iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(ParallelExecutor, ResolvesThreadCounts) {
  EXPECT_GE(ParallelExecutor::resolve(0), 1);
  EXPECT_EQ(ParallelExecutor::resolve(1), 1);
  EXPECT_EQ(ParallelExecutor::resolve(7), 7);
  EXPECT_GE(ParallelExecutor::resolve(-3), 1);  // negative falls back to hardware
  EXPECT_EQ(ParallelExecutor{3}.threads(), 3);
}

TEST(ParallelExecutor, PreservesInputOrdering) {
  for (const int threads : {1, 2, 4, 8}) {
    ParallelExecutor exec{threads};
    const std::vector<int> items = iota(100);
    const std::vector<int> out = exec.parallel_map(items, [](int x) { return x * x; });
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "threads=" << threads;
  }
}

TEST(ParallelExecutor, IndexedMapPreservesOrdering) {
  ParallelExecutor exec{4};
  const std::vector<std::string> out = exec.parallel_map_indexed(
      50, [](std::size_t i) { return "item-" + std::to_string(i); });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], "item-" + std::to_string(i));
}

TEST(ParallelExecutor, EmptyAndSingleItemInputs) {
  ParallelExecutor exec{4};
  EXPECT_TRUE(exec.parallel_map(std::vector<int>{}, [](int x) { return x; }).empty());
  const std::vector<int> one = exec.parallel_map(std::vector<int>{41}, [](int x) { return x + 1; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 42);
}

TEST(ParallelExecutor, PropagatesExceptionsAtEveryWidth) {
  for (const int threads : {1, 4}) {
    ParallelExecutor exec{threads};
    EXPECT_THROW(exec.parallel_map_indexed(64,
                                           [](std::size_t i) {
                                             if (i == 7) throw std::runtime_error("boom 7");
                                             return static_cast<int>(i);
                                           }),
                 std::runtime_error)
        << "threads=" << threads;
  }
}

TEST(ParallelExecutor, PropagatesLowestIndexException) {
  // Several items fail; the surfaced exception must deterministically be
  // the lowest failing index regardless of scheduling.
  for (int repeat = 0; repeat < 5; ++repeat) {
    ParallelExecutor exec{4};
    try {
      exec.parallel_map_indexed(128, [](std::size_t i) {
        if (i % 20 == 13) throw std::runtime_error("fail at " + std::to_string(i));
        return i;
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail at 13");
    }
  }
}

TEST(ParallelExecutor, StressMoreItemsThanThreads) {
  ParallelExecutor exec{4};
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  const std::size_t count = 5000;
  const std::vector<std::size_t> out = exec.parallel_map_indexed(count, [&](std::size_t i) {
    const int now = in_flight.fetch_add(1) + 1;
    int seen = peak.load();
    while (now > seen && !peak.compare_exchange_weak(seen, now)) {
    }
    in_flight.fetch_sub(1);
    return i * 3;
  });
  ASSERT_EQ(out.size(), count);
  for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(out[i], i * 3);
  EXPECT_LE(peak.load(), 4);  // never wider than the configured pool
  EXPECT_EQ(in_flight.load(), 0);
}

TEST(ParallelExecutor, PoolIsReusableAcrossRuns) {
  // Exercises the run/rest cycle of the persistent pool (stale-worker
  // hand-off between consecutive batches).
  ParallelExecutor exec{4};
  for (int round = 0; round < 50; ++round) {
    const std::vector<int> out =
        exec.parallel_map(iota(17 + round), [round](int x) { return x + round; });
    ASSERT_EQ(out.size(), static_cast<std::size_t>(17 + round));
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], static_cast<int>(i) + round);
  }
}

TEST(ParallelExecutor, SupportsMoveOnlyResults) {
  ParallelExecutor exec{2};
  const auto out = exec.parallel_map_indexed(
      10, [](std::size_t i) { return std::make_unique<int>(static_cast<int>(i)); });
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], static_cast<int>(i));
}

TEST(ParallelExecutor, SerialAndParallelAgree) {
  const std::vector<int> items = iota(200);
  auto fn = [](int x) { return x * 17 + 3; };
  ParallelExecutor serial{1};
  ParallelExecutor parallel{6};
  EXPECT_EQ(serial.parallel_map(items, fn), parallel.parallel_map(items, fn));
}

}  // namespace
}  // namespace symcan

#include "symcan/util/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace symcan {
namespace {

TEST(Duration, NamedConstructorsScale) {
  EXPECT_EQ(Duration::ns(1).count_ns(), 1);
  EXPECT_EQ(Duration::us(1).count_ns(), 1'000);
  EXPECT_EQ(Duration::ms(1).count_ns(), 1'000'000);
  EXPECT_EQ(Duration::s(1).count_ns(), 1'000'000'000);
}

TEST(Duration, DefaultIsZero) {
  Duration d;
  EXPECT_EQ(d, Duration::zero());
  EXPECT_EQ(d.count_ns(), 0);
}

TEST(Duration, ComparisonIsTotalOrder) {
  EXPECT_LT(Duration::us(1), Duration::us(2));
  EXPECT_LE(Duration::us(2), Duration::us(2));
  EXPECT_GT(Duration::ms(1), Duration::us(999));
  EXPECT_NE(Duration::ns(1), Duration::ns(2));
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(Duration::ms(3) + Duration::ms(4), Duration::ms(7));
  EXPECT_EQ(Duration::ms(3) - Duration::ms(4), -Duration::ms(1));
  EXPECT_EQ(Duration::ms(3) * 4, Duration::ms(12));
  EXPECT_EQ(5 * Duration::us(2), Duration::us(10));
  Duration d = Duration::ms(1);
  d += Duration::ms(2);
  EXPECT_EQ(d, Duration::ms(3));
  d -= Duration::ms(1);
  EXPECT_EQ(d, Duration::ms(2));
}

TEST(Duration, DivisionByDurationTruncates) {
  EXPECT_EQ(Duration::ms(7) / Duration::ms(2), 3);
  EXPECT_EQ(Duration::ms(1) / Duration::ms(2), 0);
}

TEST(Duration, ScalarDivision) { EXPECT_EQ(Duration::ms(9) / 2, Duration::us(4500)); }

TEST(Duration, InfiniteIsLargest) {
  EXPECT_TRUE(Duration::infinite().is_infinite());
  EXPECT_FALSE(Duration::s(100000).is_infinite());
  EXPECT_GT(Duration::infinite(), Duration::s(1'000'000));
}

TEST(Duration, ConversionsToFloating) {
  EXPECT_DOUBLE_EQ(Duration::us(1500).as_ms(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::ms(250).as_s(), 0.25);
  EXPECT_DOUBLE_EQ(Duration::ns(500).as_us(), 0.5);
}

TEST(CeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(Duration::ms(10), Duration::ms(5)), 2);
  EXPECT_EQ(ceil_div(Duration::ms(11), Duration::ms(5)), 3);
  EXPECT_EQ(ceil_div(Duration::ns(1), Duration::ms(5)), 1);
}

TEST(CeilDiv, NonPositiveNumeratorIsZero) {
  EXPECT_EQ(ceil_div(Duration::zero(), Duration::ms(5)), 0);
  EXPECT_EQ(ceil_div(-Duration::ms(3), Duration::ms(5)), 0);
}

TEST(FloorDiv, RoundsTowardMinusInfinity) {
  EXPECT_EQ(floor_div(Duration::ms(11), Duration::ms(5)), 2);
  EXPECT_EQ(floor_div(Duration::ms(10), Duration::ms(5)), 2);
  EXPECT_EQ(floor_div(-Duration::ms(1), Duration::ms(5)), -1);
  EXPECT_EQ(floor_div(-Duration::ms(5), Duration::ms(5)), -1);
  EXPECT_EQ(floor_div(-Duration::ms(6), Duration::ms(5)), -2);
}

TEST(MinMax, PickCorrectOperand) {
  EXPECT_EQ(min(Duration::ms(1), Duration::ms(2)), Duration::ms(1));
  EXPECT_EQ(max(Duration::ms(1), Duration::ms(2)), Duration::ms(2));
}

TEST(ToString, AdaptiveUnits) {
  EXPECT_EQ(to_string(Duration::ns(500)), "500 ns");
  EXPECT_EQ(to_string(Duration::us(2)), "2 us");
  EXPECT_EQ(to_string(Duration::ms(3)), "3 ms");
  EXPECT_EQ(to_string(Duration::s(4)), "4 s");
  EXPECT_EQ(to_string(Duration::infinite()), "inf");
  EXPECT_EQ(to_string(Duration::us(1500)), "1.5 ms");
}

TEST(ToString, StreamOperatorMatches) {
  std::ostringstream os;
  os << Duration::ms(7);
  EXPECT_EQ(os.str(), "7 ms");
}

/// Property: for positive a and b, ceil_div*b >= a > (ceil_div-1)*b.
class CeilDivProperty : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(CeilDivProperty, BracketsQuotient) {
  const auto [an, bn] = GetParam();
  const Duration a = Duration::ns(an);
  const Duration b = Duration::ns(bn);
  const std::int64_t q = ceil_div(a, b);
  EXPECT_GE(q * b, a);
  if (q > 0) EXPECT_LT((q - 1) * b, a);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CeilDivProperty,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{1, 1},
                                           std::pair<std::int64_t, std::int64_t>{1000, 3},
                                           std::pair<std::int64_t, std::int64_t>{999, 1000},
                                           std::pair<std::int64_t, std::int64_t>{1000, 1000},
                                           std::pair<std::int64_t, std::int64_t>{1001, 1000},
                                           std::pair<std::int64_t, std::int64_t>{123456789, 97},
                                           std::pair<std::int64_t, std::int64_t>{1, 1000000000}));

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(SaturatingScalars, AddClampsAtBothRails) {
  EXPECT_EQ(sat_add_i64(kMax, 1), kMax);
  EXPECT_EQ(sat_add_i64(kMax, kMax), kMax);
  EXPECT_EQ(sat_add_i64(-kMax, -2), -kMax);
  EXPECT_EQ(sat_add_i64(2, 3), 5);
  EXPECT_EQ(sat_add_i64(kMax, -1), kMax - 1);
}

TEST(SaturatingScalars, SubClampsAtBothRails) {
  EXPECT_EQ(sat_sub_i64(kMin, 1), -kMax);
  EXPECT_EQ(sat_sub_i64(kMax, -1), kMax);
  EXPECT_EQ(sat_sub_i64(10, 4), 6);
}

TEST(SaturatingScalars, MulClampsWithSignOfResult) {
  EXPECT_EQ(sat_mul_i64(kMax, 2), kMax);
  EXPECT_EQ(sat_mul_i64(kMax, -2), -kMax);
  EXPECT_EQ(sat_mul_i64(-kMax, -2), kMax);
  EXPECT_EQ(sat_mul_i64(1 << 20, 1 << 20), std::int64_t{1} << 40);
  EXPECT_EQ(sat_mul_i64(0, kMax), 0);
}

TEST(SaturatingScalars, NegOfMinIsMax) {
  EXPECT_EQ(sat_neg_i64(kMin), kMax);
  EXPECT_EQ(sat_neg_i64(kMax), -kMax);
  EXPECT_EQ(sat_neg_i64(-5), 5);
}

TEST(DurationSaturation, ArithmeticSticksAtInfinite) {
  const Duration inf = Duration::infinite();
  EXPECT_EQ(inf + Duration::ns(1), inf);
  EXPECT_EQ(inf + inf, inf);
  EXPECT_EQ(inf * 2, inf);
  EXPECT_EQ(2 * inf, inf);
  EXPECT_EQ(Duration::ms(kMax), inf);
  EXPECT_EQ(Duration::us(kMax), inf);
  EXPECT_EQ(Duration::s(kMax), inf);
  EXPECT_EQ(-(-inf), inf);
}

TEST(DurationSaturation, HostileAccumulationNeverWraps) {
  // A busy-window style accumulation over hostile periods/jitters must
  // monotonically ride the rail, never go negative.
  Duration w = Duration::zero();
  for (int i = 0; i < 100; ++i) {
    const Duration before = w;
    w += Duration::ms(kMax / 3);
    EXPECT_GE(w, before);
  }
  EXPECT_EQ(w, Duration::infinite());
}

TEST(DurationSaturation, CeilDivOfInfiniteDoesNotOverflow) {
  EXPECT_EQ(ceil_div(Duration::infinite(), Duration::ns(1)),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_GT(ceil_div(Duration::infinite(), Duration::ms(10)), 0);
  EXPECT_EQ(ceil_div(Duration::zero(), Duration::ns(1)), 0);
}

TEST(DurationSaturation, DivisionMinByMinusOneSaturates) {
  const Duration lowest = Duration::ns(kMin);
  EXPECT_EQ(lowest / Duration::ns(-1), kMax);
  EXPECT_EQ(lowest / std::int64_t{-1}, Duration::infinite());
}

}  // namespace
}  // namespace symcan

#include "symcan/util/diagnostics.hpp"

#include <gtest/gtest.h>

namespace symcan {
namespace {

TEST(Diagnostics, StartsClean) {
  Diagnostics d;
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.error_count(), 0u);
  EXPECT_EQ(d.warning_count(), 0u);
  EXPECT_FALSE(d.exhausted());
  EXPECT_TRUE(d.entries().empty());
  EXPECT_NO_THROW(d.throw_if_failed());
}

TEST(Diagnostics, RecordsLineNumberedEntries) {
  Diagnostics d{DiagnosticPolicy::kLenient, "DBC"};
  d.error(12, "malformed message id 'zz'");
  d.warning(30, "cycle time of 0 ms treated as unset");
  ASSERT_EQ(d.entries().size(), 2u);
  EXPECT_EQ(to_string(d.entries()[0]), "DBC line 12: error: malformed message id 'zz'");
  EXPECT_EQ(to_string(d.entries()[1]), "DBC line 30: warning: cycle time of 0 ms treated as unset");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.error_count(), 1u);
  EXPECT_EQ(d.warning_count(), 1u);
}

TEST(Diagnostics, LineZeroMeansWholeInput) {
  Diagnostics d{DiagnosticPolicy::kLenient, "K-Matrix CSV"};
  d.error(0, "missing bus record");
  EXPECT_EQ(to_string(d.entries()[0]), "K-Matrix CSV: error: missing bus record");
}

TEST(Diagnostics, ColumnRendersWhenPresent) {
  Diagnostics d{DiagnosticPolicy::kLenient, "CSV"};
  d.error_at(3, 14, "unexpected quote");
  EXPECT_EQ(to_string(d.entries()[0]), "CSV line 3, column 14: error: unexpected quote");
}

TEST(Diagnostics, StrictEscalatesWarningsToErrors) {
  Diagnostics lenient{DiagnosticPolicy::kLenient};
  lenient.warning(1, "odd but recoverable");
  EXPECT_TRUE(lenient.ok());
  EXPECT_EQ(lenient.warning_count(), 1u);

  Diagnostics strict{DiagnosticPolicy::kStrict};
  strict.warning(1, "odd but recoverable");
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.error_count(), 1u);
  EXPECT_EQ(strict.warning_count(), 0u);
  EXPECT_EQ(strict.entries()[0].severity, Severity::kError);
}

TEST(Diagnostics, BoundedStoreKeepsTrueCounters) {
  Diagnostics d;
  for (std::size_t i = 0; i < 1000; ++i) d.error(i + 1, "bad record");
  EXPECT_EQ(d.entries().size(), Diagnostics::kMaxRecorded);
  EXPECT_EQ(d.error_count(), 1000u);
  EXPECT_TRUE(d.exhausted());
  const std::string formatted = d.format();
  EXPECT_NE(formatted.find("... and 936 more not shown"), std::string::npos) << formatted;
}

TEST(Diagnostics, ExhaustedTripsAtTheBound) {
  Diagnostics d;
  for (std::size_t i = 0; i + 1 < Diagnostics::kMaxRecorded; ++i) d.warning(i + 1, "w");
  EXPECT_FALSE(d.exhausted());
  d.warning(999, "w");
  EXPECT_TRUE(d.exhausted());
}

TEST(Diagnostics, ThrowIfFailedThrowsParseErrorWithFormattedWhat) {
  Diagnostics d{DiagnosticPolicy::kLenient, "DBC"};
  d.error(7, "bad integer 'x'");
  d.warning(9, "stray signal line");
  try {
    d.throw_if_failed();
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 error(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("1 warning(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("DBC line 7: error: bad integer 'x'"), std::string::npos) << what;
    EXPECT_EQ(e.diagnostics().error_count(), 1u);
  }
}

TEST(Diagnostics, ParseErrorIsARuntimeError) {
  // Legacy catch sites expect std::runtime_error from the loaders.
  Diagnostics d;
  d.error(1, "x");
  EXPECT_THROW(d.throw_if_failed(), std::runtime_error);
}

TEST(Diagnostics, WarningsAloneDoNotThrow) {
  Diagnostics d{DiagnosticPolicy::kLenient};
  d.warning(1, "recoverable");
  EXPECT_NO_THROW(d.throw_if_failed());
}

}  // namespace
}  // namespace symcan

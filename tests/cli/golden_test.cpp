// Golden-file regression tests for the CLI's machine-readable outputs:
// the --metrics-out JSON exports and the markdown analysis report. The
// goldens live in tests/cli/golden/ (SYMCAN_GOLDEN_DIR) and are compared
// structurally for JSON — objects are key-order-insensitive, keys and
// string values must match exactly, numbers only by being numbers (timing
// metrics vary run to run) — and byte-exactly for text outputs, which
// derive from integer-exact analysis only.
//
// All inputs come from the checked-in case-study matrix
// (SYMCAN_CASE_STUDY_CSV), so the goldens do not depend on the random
// generator. To regenerate after an intentional output change:
//   SYMCAN_UPDATE_GOLDEN=1 ctest --test-dir build -R cli_golden

#include "symcan/cli/commands.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace symcan::cli {
namespace {

// --- Minimal JSON model + recursive-descent parser (tests only). ---

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< kString: the value; kNumber: the literal.
  std::vector<Json> items;
  std::map<std::string, Json> fields;  ///< Ordered map => order-insensitive.
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_{s} {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON content at " + where());
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw std::runtime_error("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error(std::string("expected '") + c + "' at " + where());
    ++pos_;
  }
  std::string where() const { return "offset " + std::to_string(pos_); }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        literal("null");
        return Json{};
      default:
        return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      v.fields[key] = value();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::kString;
    v.text = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) {
        out += s_[pos_];
        ++pos_;  // keep escapes verbatim; equality is all we need
      }
      out += s_[pos_++];
    }
    if (pos_ >= s_.size()) throw std::runtime_error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_[pos_] == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    Json v;
    v.kind = Json::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) throw std::runtime_error("not a JSON value at " + where());
    v.text = s_.substr(start, pos_ - start);
    return v;
  }

  void literal(const char* word) {
    for (const char* c = word; *c; ++c)
      if (pos_ >= s_.size() || s_[pos_++] != *c)
        throw std::runtime_error(std::string("bad literal, expected ") + word);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Structural comparison; differences are reported with a JSON-pointer-ish
/// path so a golden mismatch names the exact key.
void diff_json(const Json& want, const Json& got, const std::string& path,
               std::vector<std::string>& out) {
  if (want.kind != got.kind) {
    out.push_back(path + ": kind mismatch");
    return;
  }
  switch (want.kind) {
    case Json::Kind::kNull:
      break;
    case Json::Kind::kNumber:
      break;  // numbers match by type only (timings vary)
    case Json::Kind::kBool:
      if (want.boolean != got.boolean) out.push_back(path + ": bool mismatch");
      break;
    case Json::Kind::kString:
      if (want.text != got.text)
        out.push_back(path + ": \"" + got.text + "\" != golden \"" + want.text + "\"");
      break;
    case Json::Kind::kArray:
      if (want.items.size() != got.items.size()) {
        out.push_back(path + ": array size " + std::to_string(got.items.size()) +
                      " != golden " + std::to_string(want.items.size()));
        break;
      }
      for (std::size_t i = 0; i < want.items.size(); ++i)
        diff_json(want.items[i], got.items[i], path + "/" + std::to_string(i), out);
      break;
    case Json::Kind::kObject:
      for (const auto& [key, sub] : want.fields) {
        const auto it = got.fields.find(key);
        if (it == got.fields.end()) {
          out.push_back(path + "/" + key + ": missing");
          continue;
        }
        diff_json(sub, it->second, path + "/" + key, out);
      }
      for (const auto& [key, sub] : got.fields) {
        (void)sub;
        if (!want.fields.count(key)) out.push_back(path + "/" + key + ": unexpected key");
      }
      break;
  }
}

class GoldenTest : public ::testing::Test {
 protected:
  static std::string golden_path(const std::string& name) {
    return std::string(SYMCAN_GOLDEN_DIR) + "/" + name;
  }

  static bool update_mode() {
    const char* v = std::getenv("SYMCAN_UPDATE_GOLDEN");
    return v && std::string(v) == "1";
  }

  static std::string slurp(const std::string& file) {
    std::ifstream f{file};
    if (!f) throw std::runtime_error("cannot read " + file);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  /// Compare `actual` against the named golden (or rewrite it).
  void check_text(const std::string& name, const std::string& actual) {
    if (update_mode()) {
      std::ofstream f{golden_path(name)};
      f << actual;
      return;
    }
    EXPECT_EQ(actual, slurp(golden_path(name))) << name << " drifted; run with "
                                                << "SYMCAN_UPDATE_GOLDEN=1 if intentional";
  }

  void check_json(const std::string& name, const std::string& actual) {
    if (update_mode()) {
      std::ofstream f{golden_path(name)};
      f << actual;
      return;
    }
    const Json want = JsonParser{slurp(golden_path(name))}.parse();
    const Json got = JsonParser{actual}.parse();
    std::vector<std::string> diffs;
    diff_json(want, got, "", diffs);
    for (const std::string& d : diffs)
      ADD_FAILURE() << name << d << "; run with SYMCAN_UPDATE_GOLDEN=1 if intentional";
  }

  std::string matrix_ = SYMCAN_CASE_STUDY_CSV;
  std::string trace_ = SYMCAN_CASE_STUDY_TRACE;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(GoldenTest, AnalyzeMetricsJson) {
  const std::string metrics = ::testing::TempDir() + "/symcan_golden_analyze.json";
  // Exit 1 just means the matrix has deadline misses under the default
  // assumptions; the metrics export is written either way.
  const int rc = run({"analyze", matrix_, "--metrics-out", metrics});
  ASSERT_TRUE(rc == 0 || rc == 1) << err_.str();
  check_json("analyze_metrics.json", slurp(metrics));
  std::remove(metrics.c_str());
}

TEST_F(GoldenTest, SweepMetricsJsonIncludesCacheCounters) {
  // The sweep drives IncrementalRta, so its metrics export is where the
  // rta.cache.* counters surface; the golden pins the full key set.
  const std::string metrics = ::testing::TempDir() + "/symcan_golden_sweep.json";
  ASSERT_EQ(run({"sweep", matrix_, "--worst-case", "--from", "0", "--to", "0.2", "--step", "0.1",
                 "--jobs", "2", "--metrics-out", metrics}),
            0)
      << err_.str();
  const std::string text = slurp(metrics);
  EXPECT_NE(text.find("rta.cache.hits"), std::string::npos);
  EXPECT_NE(text.find("rta.cache.misses"), std::string::npos);
  check_json("sweep_metrics.json", text);
  std::remove(metrics.c_str());
}

TEST_F(GoldenTest, SweepCsvSeries) {
  ASSERT_EQ(run({"sweep", matrix_, "--worst-case", "--from", "0", "--to", "0.3", "--step", "0.1",
                 "--jobs", "2"}),
            0)
      << err_.str();
  check_text("sweep_series.csv", out_.str());
}

TEST_F(GoldenTest, ReportMarkdown) {
  const int rc = run({"report", matrix_, "--jitter", "0.25", "--jobs", "2"});
  ASSERT_TRUE(rc == 0 || rc == 1) << err_.str();
  check_text("report.md", out_.str());
}

TEST_F(GoldenTest, ExplainText) {
  // M16 is the lowest-priority case-study message: richest interference
  // breakdown. Text derives from integer-exact analysis only, so it is
  // pinned byte for byte.
  ASSERT_EQ(run({"explain", matrix_, "M16", "--worst-case"}), 0) << err_.str();
  check_text("explain.txt", out_.str());
}

TEST_F(GoldenTest, ExplainJson) {
  ASSERT_EQ(run({"explain", matrix_, "M16", "--worst-case", "--json"}), 0) << err_.str();
  check_json("explain.json", out_.str());
}

TEST_F(GoldenTest, MonitorHealthTableOverCommittedTrace) {
  // The committed trace (data/case_study_trace.jsonl) was recorded with
  // `simulate --millis 120 --seed 5 --errors sporadic --error-gap-ms 10`;
  // the monitor invocation passes the matching error process so its
  // bounds soundly dominate the recording. Everything downstream is
  // integer-exact, so the health table is pinned byte for byte.
  ASSERT_EQ(run({"monitor", matrix_, "--from-trace", trace_, "--errors", "sporadic",
                 "--error-gap-ms", "10"}),
            0)
      << err_.str();
  check_text("monitor.txt", out_.str());
}

TEST_F(GoldenTest, MonitorHealthEventsJsonlOverCommittedTrace) {
  const std::string events = ::testing::TempDir() + "/symcan_golden_monitor_events.jsonl";
  ASSERT_EQ(run({"monitor", matrix_, "--from-trace", trace_, "--errors", "sporadic",
                 "--error-gap-ms", "10", "--events-jsonl", events}),
            0)
      << err_.str();
  check_text("monitor_events.jsonl", slurp(events));
  std::remove(events.c_str());
}

TEST_F(GoldenTest, ReportMarkdownIdenticalWithCacheOff) {
  // The report must not depend on whether the memo layer is active.
  const int rc = run({"report", matrix_, "--jitter", "0.25", "--jobs", "2", "--rta-cache", "off"});
  ASSERT_TRUE(rc == 0 || rc == 1) << err_.str();
  check_text("report.md", out_.str());
}

}  // namespace
}  // namespace symcan::cli

#include "symcan/cli/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan::cli {
namespace {

TEST(Args, PositionalsAndOptions) {
  const Args a = Args::parse({"file.csv", "--seed", "42", "other.csv"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "file.csv");
  EXPECT_EQ(a.positionals()[1], "other.csv");
  EXPECT_EQ(a.option_or("seed", "0"), "42");
}

TEST(Args, FlagsConsumeNoValue) {
  const Args a = Args::parse({"--worst-case", "file.csv"}, {"worst-case"});
  EXPECT_TRUE(a.has_flag("worst-case"));
  ASSERT_EQ(a.positionals().size(), 1u);
  EXPECT_EQ(a.positionals()[0], "file.csv");
}

TEST(Args, MissingValueThrows) {
  EXPECT_THROW(Args::parse({"--seed"}), std::invalid_argument);
  EXPECT_THROW(Args::parse({"--"}), std::invalid_argument);
}

TEST(Args, IntOptionParsesOrThrows) {
  const Args a = Args::parse({"--n", "17", "--bad", "x7"});
  EXPECT_EQ(a.int_option_or("n", 0), 17);
  EXPECT_EQ(a.int_option_or("absent", 5), 5);
  EXPECT_THROW(a.int_option_or("bad", 0), std::invalid_argument);
}

TEST(Args, DoubleOptionParsesOrThrows) {
  const Args a = Args::parse({"--f", "0.25", "--bad", "0.2x"});
  EXPECT_DOUBLE_EQ(a.double_option_or("f", 0), 0.25);
  EXPECT_DOUBLE_EQ(a.double_option_or("absent", 0.5), 0.5);
  EXPECT_THROW(a.double_option_or("bad", 0), std::invalid_argument);
}

TEST(Args, UnusedTracksUnreadOptions) {
  const Args a = Args::parse({"--used", "1", "--typo", "2"});
  (void)a.option("used");
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, OptionReturnsNulloptWhenAbsent) {
  const Args a = Args::parse({});
  EXPECT_FALSE(a.option("nothing").has_value());
  EXPECT_FALSE(a.has_flag("nothing"));
}

TEST(Args, CountOptionRejectsNegativesAndGarbage) {
  const Args a = Args::parse({"--jobs", "-3", "--ok", "4", "--bad", "2x", "--huge",
                              "99999999999999999999"});
  EXPECT_THROW(a.count_option_or("jobs", 0), std::invalid_argument);
  EXPECT_EQ(a.count_option_or("ok", 0), 4);
  EXPECT_EQ(a.count_option_or("absent", 2), 2);
  EXPECT_THROW(a.count_option_or("bad", 0), std::invalid_argument);
  EXPECT_THROW(a.count_option_or("huge", 0), std::invalid_argument);  // out of range
}

TEST(Args, PositiveOptionRejectsZeroAndNegatives) {
  const Args a = Args::parse({"--n", "0", "--m", "-1", "--ok", "7"});
  EXPECT_THROW(a.positive_option_or("n", 1), std::invalid_argument);
  EXPECT_THROW(a.positive_option_or("m", 1), std::invalid_argument);
  EXPECT_EQ(a.positive_option_or("ok", 1), 7);
  EXPECT_EQ(a.positive_option_or("absent", 9), 9);
}

TEST(Args, PathOptionRejectsEmptyAndOptionLikeValues) {
  const Args a = Args::parse({"--trace-out", "--metrics-out", "--empty", "", "--ok", "t.json"});
  EXPECT_THROW(a.path_option("trace-out"), std::invalid_argument);
  EXPECT_THROW(a.path_option("empty"), std::invalid_argument);
  ASSERT_TRUE(a.path_option("ok").has_value());
  EXPECT_EQ(*a.path_option("ok"), "t.json");
  EXPECT_FALSE(a.path_option("absent").has_value());
}

}  // namespace
}  // namespace symcan::cli

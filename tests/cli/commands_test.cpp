#include "symcan/cli/commands.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::cli {
namespace {

/// ctest runs every test of this binary as its own process, many in
/// parallel, so fixed temp file names race: one process's TearDown can
/// delete a file another is still reading. Pid-unique names keep the
/// processes apart.
std::string temp_name(const std::string& name) {
  return ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_" + name;
}

/// Fixture providing a small matrix on disk and captured streams.
class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = temp_name("symcan_cli_test.csv");
    PowertrainConfig cfg = PowertrainConfig::case_study();
    cfg.message_count = 16;
    cfg.ecu_count = 4;
    cfg.target_utilization = 0.40;
    save_kmatrix(generate_powertrain(cfg), path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  int run(std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    return run_cli(args, out_, err_);
  }

  static std::string slurp(const std::string& file) {
    std::ifstream f{file};
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  std::string path_;
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(CliTest, NoArgsPrintsUsageWithError) {
  EXPECT_EQ(run({}), 2);
  EXPECT_NE(out_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpPrintsUsageSuccessfully) {
  EXPECT_EQ(run({"help"}), 0);
  EXPECT_NE(out_.str().find("optimize"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(run({"frobnicate"}), 2);
  EXPECT_NE(err_.str().find("unknown command"), std::string::npos);
}

TEST_F(CliTest, GenerateWritesParsableMatrix) {
  const std::string out_path = temp_name("symcan_cli_gen.csv");
  EXPECT_EQ(run({"generate", "--messages", "12", "--ecus", "3", "--out", out_path}), 0);
  const KMatrix km = load_kmatrix(out_path);
  EXPECT_EQ(km.size(), 12u);
  std::remove(out_path.c_str());
}

TEST_F(CliTest, GenerateToStdout) {
  EXPECT_EQ(run({"generate", "--messages", "8", "--ecus", "3"}), 0);
  const KMatrix km = kmatrix_from_csv(out_.str());
  EXPECT_EQ(km.size(), 8u);
}

TEST_F(CliTest, GenerateWithOffsets) {
  EXPECT_EQ(run({"generate", "--messages", "8", "--ecus", "3", "--tt-offsets"}), 0);
  const KMatrix km = kmatrix_from_csv(out_.str());
  for (const auto& m : km.messages()) EXPECT_TRUE(m.tt_offset.has_value());
}

TEST_F(CliTest, AnalyzeSchedulableReturnsZero) {
  EXPECT_EQ(run({"analyze", path_}), 0);
  EXPECT_NE(out_.str().find("misses: 0/"), std::string::npos);
  EXPECT_NE(out_.str().find("wcrt"), std::string::npos);
}

TEST_F(CliTest, AnalyzeMissingFileFails) {
  EXPECT_EQ(run({"analyze", "/no/such/file.csv"}), 2);
  EXPECT_FALSE(err_.str().empty());
}

TEST_F(CliTest, AnalyzeWorstCaseWithHighJitterReportsMisses) {
  const int rc = run({"analyze", path_, "--worst-case", "--jitter", "0.9", "--override-known"});
  // 40% bus at 90% jitter under burst errors: expect misses (exit 1), but
  // accept a robust matrix too; the point is the command runs.
  EXPECT_TRUE(rc == 0 || rc == 1);
  EXPECT_NE(out_.str().find("misses:"), std::string::npos);
}

TEST_F(CliTest, SweepEmitsCsvSeries) {
  EXPECT_EQ(run({"sweep", path_, "--worst-case", "--from", "0", "--to", "0.2", "--step", "0.1"}),
            0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("jitter_fraction,miss_fraction,miss_count"), std::string::npos);
  int lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 points
}

TEST_F(CliTest, SensitivityListsEveryMessage) {
  EXPECT_EQ(run({"sensitivity", path_, "--best-case"}), 0);
  const KMatrix km = load_kmatrix(path_);
  for (const auto& m : km.messages())
    EXPECT_NE(out_.str().find(m.name), std::string::npos) << m.name;
}

TEST_F(CliTest, OptimizeWritesValidMatrix) {
  const std::string out_path = temp_name("symcan_cli_opt.csv");
  const int rc = run({"optimize", path_, "--generations", "4", "--population", "8", "--out",
                      out_path});
  EXPECT_TRUE(rc == 0 || rc == 1);
  const KMatrix km = load_kmatrix(out_path);
  EXPECT_EQ(km.size(), 16u);
  std::remove(out_path.c_str());
}

TEST_F(CliTest, SimulateReportsStats) {
  EXPECT_EQ(run({"simulate", path_, "--millis", "200", "--errors", "sporadic"}), 0);
  EXPECT_NE(out_.str().find("activations"), std::string::npos);
  EXPECT_NE(out_.str().find("simulated"), std::string::npos);
}

TEST_F(CliTest, SimulateRejectsBadErrorKind) {
  EXPECT_EQ(run({"simulate", path_, "--errors", "cosmic"}), 2);
  EXPECT_NE(err_.str().find("--errors"), std::string::npos);
}

TEST_F(CliTest, ExtendReportsHeadroom) {
  EXPECT_EQ(run({"extend", path_, "--best-case"}), 0);
  EXPECT_NE(out_.str().find("headroom:"), std::string::npos);
}

TEST_F(CliTest, ReportEmitsMarkdownSummary) {
  const int rc = run({"report", path_, "--jitter", "0.1"});
  EXPECT_TRUE(rc == 0 || rc == 1);
  const std::string text = out_.str();
  EXPECT_NE(text.find("# Network integration report"), std::string::npos);
  EXPECT_NE(text.find("bus load"), std::string::npos);
  EXPECT_NE(text.find("schedulability"), std::string::npos);
  if (rc == 0) {
    EXPECT_NE(text.find("Jitter budgets"), std::string::npos);
    EXPECT_NE(text.find("Extensibility"), std::string::npos);
  }
}

TEST_F(CliTest, ReportListsMissesWhenUnschedulable) {
  const int rc =
      run({"report", path_, "--worst-case", "--jitter", "0.95", "--override-known"});
  if (rc == 1) EXPECT_NE(out_.str().find("## Deadline misses"), std::string::npos);
}

TEST_F(CliTest, BudgetListsEveryMessage) {
  EXPECT_EQ(run({"budget", path_}), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("jointly safe uniform jitter"), std::string::npos);
  const KMatrix km = load_kmatrix(path_);
  for (const auto& m : km.messages())
    EXPECT_NE(text.find(m.name), std::string::npos) << m.name;
}

TEST_F(CliTest, BudgetFailsOnUnschedulableBaseline) {
  // Worst-case assumptions with the matrix's jitters forced sky-high.
  const int rc = run({"budget", path_, "--worst-case", "--jitter", "0.95", "--override-known"});
  if (rc == 2) EXPECT_NE(err_.str().find("not schedulable"), std::string::npos);
}

TEST_F(CliTest, RtaCacheCapacityIsValidated) {
  EXPECT_EQ(run({"sweep", path_, "--rta-cache-capacity", "1024"}), 0);
  EXPECT_EQ(run({"sweep", path_, "--rta-cache-capacity", "0"}), 2);
  EXPECT_EQ(run({"sweep", path_, "--rta-cache-capacity", "-5"}), 2);
  EXPECT_EQ(run({"sweep", path_, "--rta-cache-capacity", "lots"}), 2);
}

TEST_F(CliTest, ServeRequiresStdio) {
  std::istringstream in;
  EXPECT_EQ(run_cli({"serve"}, in, out_, err_), 2);
  EXPECT_NE(err_.str().find("--stdio"), std::string::npos);
}

TEST_F(CliTest, ServeValidatesItsKnobsBeforeReadingRequests) {
  // Garbage knobs exit 2 up front; stdin is never touched.
  const std::vector<std::vector<std::string>> bad = {
      {"serve", "--stdio", "--serve-shards", "0"},
      {"serve", "--stdio", "--serve-shards", "many"},
      {"serve", "--stdio", "--ring-capacity", "-1"},
      {"serve", "--stdio", "--overflow", "fifo"},
      {"serve", "--stdio", "--block-deadline-ms", "0"},
      {"serve", "--stdio", "--batch", "0"},
      {"serve", "--stdio", "--matrix-cache", "nope"},
      {"serve", "--stdio", "--rta-cache-capacity", "0"},
      {"serve", "--stdio", "--frobnicate", "1"},
  };
  for (const auto& args : bad) {
    std::istringstream in{"{\"id\":\"x\",\"kind\":\"health\"}\n"};
    out_.str("");
    err_.str("");
    EXPECT_EQ(run_cli(args, in, out_, err_), 2) << args[2];
    EXPECT_EQ(out_.str(), "") << args[2];
  }
}

TEST_F(CliTest, ServeRejectsDegenerateSloObjective) {
  // Regression: objective 1.0 used to reach the SLO trackers, where the
  // zero error allowance turned burn rates into inf/nan in health JSON.
  // Now the whole closed boundary exits 2 before any request is read.
  for (const std::string objective : {"1.0", "0.0", "-0.25", "1.5", "nope"}) {
    std::istringstream in{"{\"id\":\"x\",\"kind\":\"health\"}\n"};
    out_.str("");
    err_.str("");
    EXPECT_EQ(run_cli({"serve", "--stdio", "--slo-objective", objective}, in, out_, err_), 2)
        << objective;
    EXPECT_EQ(out_.str(), "") << objective;
    EXPECT_FALSE(err_.str().empty()) << objective;
  }
  std::istringstream in{"{\"id\":\"ok\",\"kind\":\"health\"}\n"};
  out_.str("");
  err_.str("");
  // 0.5 is exactly representable, so the JSON spelling is stable.
  EXPECT_EQ(run_cli({"serve", "--stdio", "--slo-objective", "0.5"}, in, out_, err_), 0);
  EXPECT_NE(out_.str().find("\"objective\":0.5"), std::string::npos);
}

TEST_F(CliTest, AnalyzeProbDefaultsMatchDeterministicVerdicts) {
  // Degenerate ppm defaults: the probabilistic table must agree with the
  // deterministic one on the verdict count and exit code.
  EXPECT_EQ(run({"analyze", path_, "--prob"}), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("miss ppm"), std::string::npos);
  EXPECT_NE(text.find("at-risk: 0/"), std::string::npos);
}

TEST_F(CliTest, AnalyzeProbValidatesPpmRange) {
  EXPECT_EQ(run({"analyze", path_, "--prob", "--fault-ppm", "1000001"}), 2);
  EXPECT_EQ(run({"analyze", path_, "--prob", "--fault-ppm", "-1"}), 2);
  EXPECT_EQ(run({"analyze", path_, "--prob", "--max-rungs", "0"}), 2);
}

TEST_F(CliTest, SweepProbEmitsCsvSeries) {
  EXPECT_EQ(run({"sweep", path_, "--prob", "--points", "3", "--from-ppm", "1000000", "--to-ppm",
                 "100"}),
            0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("fault_ppm,at_risk_fraction,worst_miss_ppm"), std::string::npos);
  int lines = 0;
  for (char c : text)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);  // header + 3 points
}

TEST_F(CliTest, ServeStdioAnswersRequestsAndExitsAtEof) {
  std::istringstream in{"{\"id\":\"h1\",\"kind\":\"health\"}\n"};
  EXPECT_EQ(run_cli({"serve", "--stdio", "--serve-shards", "4"}, in, out_, err_), 0);
  EXPECT_NE(out_.str().find("\"id\":\"h1\""), std::string::npos);
  EXPECT_NE(out_.str().find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(out_.str().find("\"shards\":4"), std::string::npos);
  EXPECT_EQ(err_.str(), "");

  std::istringstream empty;
  out_.str("");
  EXPECT_EQ(run_cli({"serve", "--stdio"}, empty, out_, err_), 0);
  EXPECT_EQ(out_.str(), "");
}

TEST_F(CliTest, ServeStdioReportsMalformedRequestLines) {
  std::istringstream in{"this is not json\n{\"id\":\"h2\",\"kind\":\"health\"}\n"};
  EXPECT_EQ(run_cli({"serve", "--stdio"}, in, out_, err_), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("\"status\":\"invalid\""), std::string::npos);
  EXPECT_NE(text.find("\"line\":1"), std::string::npos);
  // The service survives the bad line; the next request is answered.
  EXPECT_NE(text.find("\"id\":\"h2\""), std::string::npos);
}

TEST_F(CliTest, UnknownOptionIsRejected) {
  EXPECT_EQ(run({"analyze", path_, "--tpyo", "3"}), 2);
  EXPECT_NE(err_.str().find("unknown option --tpyo"), std::string::npos);
}

TEST_F(CliTest, VersionPrintsProjectAndBuildConfiguration) {
  EXPECT_EQ(run({"version"}), 0);
  EXPECT_NE(out_.str().find("symcan "), std::string::npos);
  EXPECT_NE(out_.str().find("sanitizer:"), std::string::npos);
  EXPECT_NE(out_.str().find("build:"), std::string::npos);
  EXPECT_EQ(run({"--version"}), 0);
  EXPECT_EQ(out_.str(), version_string() + "\n");
}

TEST_F(CliTest, JobsRejectsNegativeAndGarbage) {
  EXPECT_EQ(run({"sweep", path_, "--jobs", "-2"}), 2);
  EXPECT_NE(err_.str().find("--jobs"), std::string::npos);
  EXPECT_EQ(run({"sweep", path_, "--jobs", "two"}), 2);
  EXPECT_NE(err_.str().find("not an integer"), std::string::npos);
}

TEST_F(CliTest, TileRejectsNegativeAndGarbage) {
  EXPECT_EQ(run({"sweep", path_, "--tile", "-1"}), 2);
  EXPECT_NE(err_.str().find("--tile"), std::string::npos);
  EXPECT_EQ(run({"sweep", path_, "--tile", "seven"}), 2);
  EXPECT_NE(err_.str().find("not an integer"), std::string::npos);
  EXPECT_EQ(run({"sensitivity", path_, "--tile", "-3"}), 2);
  EXPECT_EQ(run({"optimize", path_, "--tile", "garbage"}), 2);
}

TEST_F(CliTest, TileShardsSweepIdenticallyToDefault) {
  EXPECT_EQ(run({"sweep", path_, "--from", "0", "--to", "0.2", "--step", "0.1"}), 0);
  const std::string untiled = out_.str();
  EXPECT_EQ(run({"sweep", path_, "--from", "0", "--to", "0.2", "--step", "0.1", "--jobs", "2",
                 "--tile", "1"}),
            0);
  EXPECT_EQ(out_.str(), untiled);
}

TEST_F(CliTest, GenerateRejectsNonPositiveSizes) {
  EXPECT_EQ(run({"generate", "--messages", "0"}), 2);
  EXPECT_NE(err_.str().find("--messages"), std::string::npos);
  EXPECT_EQ(run({"generate", "--ecus", "-1"}), 2);
  EXPECT_NE(err_.str().find("--ecus"), std::string::npos);
}

TEST_F(CliTest, AnalyzeExportsTraceAndMetrics) {
  const std::string trace = temp_name("symcan_cli_trace.json");
  const std::string metrics = temp_name("symcan_cli_metrics.json");
  EXPECT_EQ(run({"analyze", path_, "--trace-out", trace, "--metrics-out", metrics}), 0);
  const std::string t = slurp(trace);
  EXPECT_NE(t.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(t.find("rta.can.analyze"), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"X\""), std::string::npos);
  const std::string m = slurp(metrics);
  EXPECT_NE(m.find("rta.can.fixedpoint_iterations"), std::string::npos);
  EXPECT_NE(m.find("rta.can.iterations_per_message"), std::string::npos);
  std::remove(trace.c_str());
  std::remove(metrics.c_str());
}

TEST_F(CliTest, SweepWithJobsExportsParallelMetrics) {
  const std::string metrics = temp_name("symcan_cli_sweep_metrics.json");
  EXPECT_EQ(run({"sweep", path_, "--jobs", "2", "--from", "0", "--to", "0.1", "--step", "0.05",
                 "--metrics-out", metrics}),
            0);
  const std::string m = slurp(metrics);
  EXPECT_NE(m.find("parallel.tasks"), std::string::npos);
  EXPECT_NE(m.find("parallel.task_us"), std::string::npos);
  EXPECT_NE(m.find("\"sweep.jitter\""), std::string::npos);
  std::remove(metrics.c_str());
}

TEST_F(CliTest, OptimizeExportsPerGenerationSeries) {
  const std::string metrics = temp_name("symcan_cli_opt_metrics.json");
  const int rc = run({"optimize", path_, "--generations", "2", "--population", "8",
                      "--metrics-out", metrics, "--out",
                      temp_name("symcan_cli_opt2.csv")});
  EXPECT_TRUE(rc == 0 || rc == 1);
  const std::string m = slurp(metrics);
  EXPECT_NE(m.find("\"ga.generations\""), std::string::npos);
  EXPECT_NE(m.find("best_misses"), std::string::npos);
  EXPECT_NE(m.find("eval_ms"), std::string::npos);
  std::remove(metrics.c_str());
  std::remove((temp_name("symcan_cli_opt2.csv")).c_str());
}

TEST_F(CliTest, ExplainDecomposesOneMessage) {
  const KMatrix km = load_kmatrix(path_);
  const std::string name = km.messages().back().name;
  EXPECT_EQ(run({"explain", path_, name, "--worst-case"}), 0);
  const std::string text = out_.str();
  EXPECT_NE(text.find("message " + name), std::string::npos);
  EXPECT_NE(text.find("breakdown of the bound"), std::string::npos);
  EXPECT_NE(text.find("sum of parts == wcrt"), std::string::npos);
}

TEST_F(CliTest, ExplainJsonCarriesTheSumCheck) {
  const KMatrix km = load_kmatrix(path_);
  EXPECT_EQ(run({"explain", path_, km.messages().front().name, "--json"}), 0);
  const std::string json = out_.str();
  EXPECT_NE(json.find("\"sum_check\":true"), std::string::npos);
  EXPECT_NE(json.find("\"wcrt_ns\":"), std::string::npos);
  EXPECT_NE(json.find("\"interference\":["), std::string::npos);
}

TEST_F(CliTest, ExplainUnknownMessageFails) {
  EXPECT_EQ(run({"explain", path_, "no-such-message"}), 2);
  EXPECT_NE(err_.str().find("no-such-message"), std::string::npos);
}

TEST_F(CliTest, ValidateFindsNoViolationsOnSoundPairing) {
  EXPECT_EQ(run({"validate", path_, "--millis", "200", "--errors", "sporadic"}), 0);
  EXPECT_NE(out_.str().find("0 violations"), std::string::npos);
  EXPECT_EQ(out_.str().find("<-- VIOLATION"), std::string::npos);
}

TEST_F(CliTest, MonitorSimulatedBusPrintsHealthTable) {
  // Sound bounds pairing (same as validate): no message may cross its
  // bound, so the exit code is 0 and every message gets a state column.
  EXPECT_EQ(run({"monitor", path_, "--millis", "200", "--errors", "sporadic"}), 0);
  EXPECT_NE(out_.str().find("stream: "), std::string::npos);
  EXPECT_NE(out_.str().find("0 messages over bound"), std::string::npos);
  EXPECT_NE(out_.str().find("state"), std::string::npos);
}

TEST_F(CliTest, MonitorExportsStatsJsonAndEventsJsonl) {
  const std::string stats = temp_name("symcan_cli_monitor_stats.json");
  const std::string events = temp_name("symcan_cli_monitor_events.jsonl");
  EXPECT_EQ(run({"monitor", path_, "--millis", "200", "--json", "--stats-json", stats,
                 "--events-jsonl", events}),
            0);
  EXPECT_NE(out_.str().find("\"frames\":"), std::string::npos);
  const std::string s = slurp(stats);
  EXPECT_NE(s.find("\"messages\":["), std::string::npos);
  EXPECT_NE(s.find("\"active\":["), std::string::npos);
  std::remove(stats.c_str());
  std::remove(events.c_str());
}

TEST_F(CliTest, MonitorFromTraceMatchesLiveSimulation) {
  // Exporting the simulated trace and replaying it through --from-trace
  // must produce the identical health table: the JSONL roundtrip is
  // nanosecond-exact and ingest is chunk-invariant.
  const std::string jsonl = temp_name("symcan_cli_monitor_trace.jsonl");
  ASSERT_EQ(run({"simulate", path_, "--millis", "200", "--trace-jsonl", jsonl}), 0);
  ASSERT_EQ(run({"monitor", path_, "--millis", "200"}), 0);
  const std::string live = out_.str();
  ASSERT_EQ(run({"monitor", path_, "--from-trace", jsonl, "--chunk", "17"}), 0);
  EXPECT_EQ(out_.str(), live);
  std::remove(jsonl.c_str());
}

TEST_F(CliTest, MonitorMalformedTraceExitsTwoWithLineDiagnostics) {
  const std::string bad = temp_name("symcan_cli_monitor_bad.jsonl");
  {
    std::ofstream f{bad};
    f << "{\"t_ns\":0,\"type\":\"release\",\"message\":\"ok\",\"instance\":0}\n"
      << "definitely not json\n";
  }
  EXPECT_EQ(run({"monitor", path_, "--from-trace", bad}), 2);
  EXPECT_NE(err_.str().find(" line 2"), std::string::npos) << err_.str();
  EXPECT_NE(err_.str().find("error"), std::string::npos);
  std::remove(bad.c_str());
}

TEST_F(CliTest, MonitorRejectsNonPositiveChunk) {
  EXPECT_EQ(run({"monitor", path_, "--millis", "50", "--chunk", "0"}), 2);
  EXPECT_NE(err_.str().find("chunk"), std::string::npos);
}

TEST_F(CliTest, SimulateExportsTraceAndStats) {
  const std::string jsonl = temp_name("symcan_cli_sim.jsonl");
  const std::string chrome = temp_name("symcan_cli_sim_chrome.json");
  const std::string stats = temp_name("symcan_cli_sim_stats.json");
  EXPECT_EQ(run({"simulate", path_, "--millis", "100", "--trace-jsonl", jsonl, "--trace-chrome",
                 chrome, "--stats-json", stats}),
            0);
  const std::string l = slurp(jsonl);
  EXPECT_NE(l.find("\"type\":\"tx_end\""), std::string::npos);
  const std::string c = slurp(chrome);
  EXPECT_NE(c.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(c.find("\"name\": \"bus\""), std::string::npos);
  const std::string s = slurp(stats);
  EXPECT_NE(s.find("\"average_utilization\""), std::string::npos);
  EXPECT_NE(s.find("\"messages\":["), std::string::npos);
  std::remove(jsonl.c_str());
  std::remove(chrome.c_str());
  std::remove(stats.c_str());
}

TEST_F(CliTest, SimulateStatsTableOnStdout) {
  EXPECT_EQ(run({"simulate", path_, "--millis", "100", "--stats", "--window-ms", "20"}), 0);
  EXPECT_NE(out_.str().find("bus utilization avg"), std::string::npos);
}

TEST_F(CliTest, TraceOutRejectsOptionLikePath) {
  EXPECT_EQ(run({"analyze", path_, "--trace-out", "--metrics-out", "m.json"}), 2);
  EXPECT_NE(err_.str().find("--trace-out"), std::string::npos);
}

TEST_F(CliTest, MetricsOutFailsCleanlyOnUnwritablePath) {
  EXPECT_EQ(run({"analyze", path_, "--metrics-out", "/no/such/dir/m.json"}), 2);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos);
}

/// Writes `text` to a temp file and returns its path; removed in TearDown
/// by the caller via std::remove.
std::string write_temp(const std::string& name, const std::string& text) {
  const std::string p = temp_name(name);
  std::ofstream f{p};
  f << text;
  return p;
}

TEST_F(CliTest, MalformedMatrixExitsTwoWithLineDiagnostics) {
  const std::string bad = write_temp("symcan_cli_bad.csv",
                                     "bus,a,500000\n"
                                     "node,A,fullCAN,1,0\n"
                                     "msg,m,4096,standard,9,0,0,0,period,-,A,A,0,-\n");
  EXPECT_EQ(run({"analyze", bad}), 2);
  const std::string e = err_.str();
  EXPECT_NE(e.find("error(s)"), std::string::npos) << e;
  EXPECT_NE(e.find(" line 3"), std::string::npos) << e;
  EXPECT_NE(e.find("K-Matrix CSV"), std::string::npos) << e;
  std::remove(bad.c_str());
}

TEST_F(CliTest, MalformedDbcExitsTwoWithLineDiagnostics) {
  const std::string bad = write_temp("symcan_cli_bad.dbc",
                                     "BU_: ENG\n"
                                     "BO_ 4096 M1: 8 ENG\n");
  EXPECT_EQ(run({"import", bad, "--dbc"}), 2);
  const std::string e = err_.str();
  EXPECT_NE(e.find("error(s)"), std::string::npos) << e;
  EXPECT_NE(e.find("DBC line 2"), std::string::npos) << e;
  std::remove(bad.c_str());
}

TEST_F(CliTest, MalformedInputReportsEveryErrorNotJustTheFirst) {
  const std::string bad = write_temp("symcan_cli_multi.csv",
                                     "bus,a,500000\n"
                                     "node,A,fullCAN,0,0\n"
                                     "msg,m,4096,standard,8,10000000,0,0,period,-,A,A,0,-\n"
                                     "msg,n,1,standard,9,10000000,0,0,period,-,A,A,0,-\n");
  EXPECT_EQ(run({"analyze", bad}), 2);
  const std::string e = err_.str();
  EXPECT_NE(e.find("3 error(s)"), std::string::npos) << e;
  EXPECT_NE(e.find(" line 2"), std::string::npos) << e;
  EXPECT_NE(e.find(" line 3"), std::string::npos) << e;
  EXPECT_NE(e.find(" line 4"), std::string::npos) << e;
  std::remove(bad.c_str());
}

TEST_F(CliTest, StrictFlagEscalatesWarningsToExitTwo) {
  // Gateway flag '2' is a lenient warning (treated as 0) but a strict error.
  const std::string warn = write_temp("symcan_cli_warn.csv",
                                      "bus,a,500000\n"
                                      "node,A,fullCAN,1,2\n");
  EXPECT_EQ(run({"analyze", warn}), 0) << err_.str();
  EXPECT_EQ(run({"analyze", warn, "--strict"}), 2);
  EXPECT_NE(err_.str().find("error(s)"), std::string::npos) << err_.str();
  std::remove(warn.c_str());
}

TEST_F(CliTest, StrictFlagAppliesToDbcImport) {
  const std::string warn = write_temp("symcan_cli_warn.dbc",
                                      "BU_: ENG GW\n"
                                      "BO_ 256 M1: 8 ENG\n"
                                      "BA_ \"GenMsgCycleTime\" BO_ 256 0;\n");
  EXPECT_EQ(run({"import", warn, "--dbc"}), 0) << err_.str();
  EXPECT_EQ(run({"import", warn, "--dbc", "--strict"}), 2);
  std::remove(warn.c_str());
}

TEST_F(CliTest, MissingFileFailsWithoutLineDiagnostics) {
  // A missing file is an environment error, not a parse error: no
  // line-numbered diagnostics block.
  EXPECT_EQ(run({"analyze", "/no/such/symcan_file.csv"}), 2);
  EXPECT_NE(err_.str().find("cannot open"), std::string::npos) << err_.str();
  EXPECT_EQ(err_.str().find("error(s)"), std::string::npos) << err_.str();
}

}  // namespace
}  // namespace symcan::cli

// O(1) memory contract: once the StreamAnalyzer has seen every message
// once and its watchdog heap has reached steady occupancy, ingesting
// further traffic performs ZERO heap allocations — state is a fixed
// block per message ID, never per frame or per instance. The global
// operator new is replaced with a counting shim to prove it (same
// technique as tests/obs/obs_overhead_test.cpp; each test source is its
// own binary, so the replacement is local to this suite).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "symcan/stream/analyzer.hpp"

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace symcan::stream {
namespace {

/// Clean periodic multi-message stream: `arrivals` release/txend pairs
/// per message, all messages phase-staggered on the same period so the
/// event order is deterministic and no detector ever fires.
std::vector<TraceEvent> make_stream(int messages, int arrivals, Duration start) {
  const Duration period = Duration::ms(1);
  const Duration response = Duration::us(50);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(messages) * static_cast<std::size_t>(arrivals) * 2);
  for (int k = 0; k < arrivals; ++k) {
    for (int m = 0; m < messages; ++m) {
      const Duration t = start + period * k + Duration::us(100) * m;
      const std::int64_t instance = k;
      out.push_back({t, TraceEventType::kRelease, "msg_" + std::to_string(m), instance});
      out.push_back({t + response, TraceEventType::kTxEnd, "msg_" + std::to_string(m), instance});
    }
  }
  return out;
}

TEST(StreamAllocation, SteadyStateIngestAllocatesNothing) {
  // Warmup: first message sightings allocate per-message state and the
  // watchdog heap grows to its steady occupancy (stale entries are popped
  // lazily ~4 periods after arming, so occupancy plateaus quickly).
  const std::vector<TraceEvent> warm = make_stream(8, 200, Duration::zero());
  const std::vector<TraceEvent> steady = make_stream(8, 200, Duration::ms(200));

  StreamAnalyzer an;
  an.ingest(warm.data(), warm.size());
  ASSERT_TRUE(an.events().empty());

  const long before = g_allocations.load(std::memory_order_relaxed);
  an.ingest(steady.data(), steady.size());
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "steady-state ingest must not allocate";

  EXPECT_TRUE(an.events().empty());
  EXPECT_EQ(an.frames_ingested(), static_cast<std::int64_t>(warm.size() + steady.size()));
  const StreamStats stats = an.stats();
  ASSERT_EQ(stats.messages.size(), 8u);
  EXPECT_EQ(stats.messages.front().completions, 400);
}

TEST(StreamAllocation, FirstSightingsDoAllocate) {
  // Sanity check that the shim actually counts: a fresh analyzer meeting
  // fresh messages must allocate (per-message state, name interning).
  const std::vector<TraceEvent> warm = make_stream(4, 20, Duration::zero());
  const long before = g_allocations.load(std::memory_order_relaxed);
  StreamAnalyzer an;
  an.ingest(warm.data(), warm.size());
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0);
}

TEST(StreamAllocation, SingleEventPathIsAllocationFreeToo) {
  // The per-event entry point (no batch wrapper) shares the contract.
  const std::vector<TraceEvent> warm = make_stream(4, 100, Duration::zero());
  const std::vector<TraceEvent> steady = make_stream(4, 100, Duration::ms(100));
  StreamAnalyzer an;
  an.ingest(warm.data(), warm.size());
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (const TraceEvent& e : steady) an.ingest(e);
  const long after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
  EXPECT_TRUE(an.events().empty());
}

}  // namespace
}  // namespace symcan::stream

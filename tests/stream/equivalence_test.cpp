// Online/offline equivalence property: replaying a completed simulation
// trace through the StreamAnalyzer must reproduce the offline
// reductions exactly, in integer nanoseconds — compute_trace_stats
// latency min/mean/max (and every event counter), and the violation set
// of compare_bound_vs_observed. No float drift, no sampling, no "close
// enough": the stream path is the batch path, evaluated early.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/error_model.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/sim/trace_stats.hpp"
#include "symcan/sim/validation.hpp"
#include "symcan/stream/analyzer.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct Workload {
  KMatrix km;
  BusResult bounds;
  SimResult sim;
};

/// Seeded workload, analyzed and simulated with a recorded trace. When
/// `sound` is false the analysis deliberately omits the error model the
/// simulator injects — an unsound pairing that produces real violations
/// for the violation-set half of the property.
Workload run_workload(std::uint64_t seed, bool sound) {
  PowertrainConfig wl;
  wl.seed = seed;
  wl.message_count = 12 + static_cast<int>(seed % 9);
  wl.ecu_count = 3 + static_cast<int>(seed % 3);
  wl.target_utilization = 0.35 + 0.03 * static_cast<double>(seed % 8);
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, 0.05 * static_cast<double>(seed % 5), /*override_known=*/true);

  const bool errors = seed % 2 == 0;

  CanRtaConfig rta;
  rta.worst_case_stuffing = sound;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  if (errors && sound) rta.errors = std::make_shared<SporadicErrors>(Duration::ms(10));

  SimConfig sim;
  sim.duration = Duration::ms(400);
  sim.seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.record_trace = true;
  if (errors) sim.errors = SimErrorProcess::sporadic(Duration::ms(10));

  BusResult bounds = CanRta{km, rta}.analyze();
  SimResult res = simulate(km, sim);
  return Workload{std::move(km), std::move(bounds), std::move(res)};
}

/// Names flagged by the offline oracle.
std::set<std::string> offline_violators(const BoundValidation& v) {
  std::set<std::string> out;
  for (const BoundObservation& o : v.messages)
    if (o.violation) out.insert(o.name);
  return out;
}

std::set<std::string> online_violators(const stream::StreamStats& s) {
  std::set<std::string> out;
  for (const stream::MessageStreamStats& m : s.messages)
    if (m.violation()) out.insert(m.name);
  return out;
}

TEST(StreamEquivalence, OnlineReproducesOfflineStatsAndViolationsExactly) {
  int seeds_with_traffic = 0;
  int seeds_with_violations = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Unsound pairing on a third of the seeds so both halves of the
    // violation-set equality are exercised (empty and non-empty).
    const bool sound = seed % 3 != 0;
    const Workload w = run_workload(seed, sound);
    SCOPED_TRACE("seed " + std::to_string(seed) + (sound ? " sound" : " unsound"));
    ASSERT_FALSE(w.sim.trace.events().empty());
    ++seeds_with_traffic;

    stream::StreamAnalyzer an;
    an.set_bounds(w.bounds);
    an.ingest(w.sim.trace);
    const stream::StreamStats online = an.stats();

    // --- compute_trace_stats half: exact integer-ns latency aggregates
    // and event counters, message by message.
    const TraceStats offline =
        compute_trace_stats(w.sim.trace, w.sim.simulated, Duration::ms(10));
    for (const MessageTraceStats& m : offline.messages) {
      const stream::MessageStreamStats* o = online.find(m.name);
      ASSERT_NE(o, nullptr) << m.name;
      EXPECT_EQ(o->releases, m.releases) << m.name;
      EXPECT_EQ(o->completions, m.completions) << m.name;
      EXPECT_EQ(o->errors, m.errors) << m.name;
      EXPECT_EQ(o->retransmits, m.retransmits) << m.name;
      EXPECT_EQ(o->losses, m.losses) << m.name;
      EXPECT_EQ(o->latency_samples, m.latency_samples) << m.name;
      EXPECT_EQ(o->latency_max, m.observed_max) << m.name;
      EXPECT_EQ(o->latency_min, m.observed_min) << m.name;
      EXPECT_EQ(o->latency_total, m.latency_total) << m.name;
      EXPECT_EQ(o->latency_mean(), m.latency_mean()) << m.name;
    }
    // Every message the analyzer saw traffic for exists offline too (the
    // analyzer additionally tracks zero-traffic messages named by the
    // analysis — those must stay all-zero).
    for (const stream::MessageStreamStats& m : online.messages) {
      if (offline.find(m.name) == nullptr) {
        EXPECT_EQ(m.completions, 0) << m.name;
        EXPECT_EQ(m.releases, 0) << m.name;
        EXPECT_EQ(m.latency_samples, 0) << m.name;
      }
    }

    // --- compare_bound_vs_observed half: identical violation sets.
    const BoundValidation v = compare_bound_vs_observed(w.bounds, w.sim);
    EXPECT_EQ(online_violators(online), offline_violators(v));
    EXPECT_EQ(online.violations, static_cast<std::int64_t>(v.violations));
    if (v.violations > 0) ++seeds_with_violations;

    // Sound pairings must be violation-free online, exactly as offline.
    if (sound) {
      EXPECT_EQ(online.violations, 0) << validation_to_text(v);
    }
  }
  EXPECT_EQ(seeds_with_traffic, 20);
  // The property is vacuous if no unsound seed ever violates; the seeds
  // above are chosen so several do.
  EXPECT_GT(seeds_with_violations, 0);
}

}  // namespace
}  // namespace symcan

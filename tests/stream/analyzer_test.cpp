// Detector unit suite with synthetic fault injection: traces constructed
// with known jitter bursts, drift ramps, stalls and arrhythmia episodes
// must raise the matching onset at the expected event index and clear on
// recovery — and a clean periodic trace must raise zero events (the
// false-positive gate every always-on monitor lives or dies on).

#include "symcan/stream/analyzer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "symcan/sim/trace.hpp"
#include "symcan/stream/health.hpp"

namespace symcan::stream {
namespace {

constexpr Duration kPeriod = Duration::ms(10);
constexpr Duration kResponse = Duration::us(200);

/// Synthetic trace builder: each arrival time becomes a release at
/// (arrival - response) and a completion at the arrival itself, so the
/// analyzer sees a constant response time and the injected inter-arrival
/// pattern. Events from several messages merge in time order.
struct TraceBuilder {
  std::vector<TraceEvent> events;

  void add_message(const std::string& name, const std::vector<Duration>& arrivals) {
    std::int64_t instance = 0;
    for (const Duration t : arrivals) {
      events.push_back({t - kResponse, TraceEventType::kRelease, name, instance});
      events.push_back({t, TraceEventType::kTxEnd, name, instance});
      ++instance;
    }
  }

  /// Chronological merge; ties keep insertion order (stable sort) so the
  /// stream is deterministic.
  std::vector<TraceEvent> build() {
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.time < b.time; });
    return events;
  }

  /// Frame index of the completion of `name` at time `t` in the built
  /// (sorted) stream — what HealthEvent::frame_index should report.
  static std::int64_t completion_frame(const std::vector<TraceEvent>& stream,
                                       const std::string& name, Duration t) {
    for (std::size_t i = 0; i < stream.size(); ++i)
      if (stream[i].type == TraceEventType::kTxEnd && stream[i].message == name &&
          stream[i].time == t)
        return static_cast<std::int64_t>(i);
    return -1;
  }
};

std::vector<Duration> periodic(int count, Duration period = kPeriod,
                               Duration start = Duration::zero()) {
  std::vector<Duration> out;
  for (int i = 0; i < count; ++i) out.push_back(start + period * i + kResponse);
  return out;
}

std::vector<HealthEvent> events_for(const StreamAnalyzer& an, const std::string& name) {
  std::vector<HealthEvent> out;
  for (const HealthEvent& e : an.events())
    if (e.message == name) out.push_back(e);
  return out;
}

TEST(StreamDetectors, CleanPeriodicTraceRaisesZeroEvents) {
  TraceBuilder tb;
  tb.add_message("A", periodic(200, Duration::ms(10)));
  tb.add_message("B", periodic(100, Duration::ms(20)));
  tb.add_message("C", periodic(40, Duration::ms(50)));
  const auto stream = tb.build();

  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());
  an.advance_to(stream.back().time);
  EXPECT_TRUE(an.events().empty())
      << "false positive: " << to_string(an.events().front());
  EXPECT_EQ(an.frames_ingested(), static_cast<std::int64_t>(stream.size()));

  const StreamStats stats = an.stats();
  ASSERT_EQ(stats.messages.size(), 3u);
  EXPECT_EQ(stats.active_conditions, 0);
  const MessageStreamStats* a = stats.find("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->completions, 200);
  EXPECT_EQ(a->latency_min, kResponse);
  EXPECT_EQ(a->latency_max, kResponse);
  EXPECT_EQ(a->period_baseline, Duration::ms(10));
  EXPECT_EQ(a->period_deviation, Duration::zero());
}

TEST(StreamDetectors, JitterBurstOnsetAtThirdOutlierAndClearsAfterCalm) {
  // Clean warmup, then five alternating +/-5 ms displacements: every
  // burst delta is an outlier against the (frozen, robust) envelope, so
  // onset lands exactly on the third burst arrival; recovery is eight
  // clean deltas, so clear lands exactly on the eighth.
  const Duration j = Duration::ms(5);
  std::vector<Duration> arrivals = periodic(20);
  const auto at = [&](int i) { return kPeriod * i + kResponse; };
  for (int i = 20; i < 25; ++i) arrivals.push_back(at(i) + ((i - 20) % 2 == 0 ? j : Duration::zero()));
  for (int i = 25; i < 40; ++i) arrivals.push_back(at(i));

  TraceBuilder tb;
  tb.add_message("M", arrivals);
  tb.add_message("CLK", periodic(400, Duration::ms(1)));
  const auto stream = tb.build();

  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());

  const auto got = events_for(an, "M");
  ASSERT_EQ(got.size(), 2u) << stream_stats_to_text(an.stats());
  EXPECT_EQ(got[0].type, HealthEventType::kJitterBurstOnset);
  EXPECT_EQ(got[1].type, HealthEventType::kJitterBurstClear);

  // Burst deltas: arrivals 20..25 give P+5, P-5, P+5, P-5, P+5, P-5 —
  // six consecutive outliers; onset on the third (arrival 22).
  EXPECT_EQ(got[0].time, arrivals[22]);
  EXPECT_EQ(got[0].frame_index, TraceBuilder::completion_frame(stream, "M", arrivals[22]));
  // Arrival 25 closes the burst (last displaced delta); calm deltas start
  // at arrival 26, so the eighth inlier is arrival 33.
  EXPECT_EQ(got[1].time, arrivals[33]);
  EXPECT_EQ(got[1].frame_index, TraceBuilder::completion_frame(stream, "M", arrivals[33]));
}

TEST(StreamDetectors, DriftRampRaisesOnsetAndClearsAfterPlateau) {
  // Period ramps 10 ms -> 20 ms in 100 us steps (1 % per arrival: inliers,
  // not outliers), then holds. The fast baseline tracks the ramp, the slow
  // reference lags ~64 samples behind -> drift onset; on the plateau both
  // converge -> drift clear.
  std::vector<Duration> arrivals = periodic(20);
  Duration t = arrivals.back();
  Duration period = kPeriod;
  for (int i = 0; i < 100; ++i) {
    period += Duration::us(100);
    t += period;
    arrivals.push_back(t);
  }
  for (int i = 0; i < 200; ++i) {
    t += period;
    arrivals.push_back(t);
  }

  TraceBuilder tb;
  tb.add_message("M", arrivals);
  const auto stream = tb.build();
  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());

  const auto got = events_for(an, "M");
  ASSERT_EQ(got.size(), 2u) << stream_stats_to_text(an.stats());
  EXPECT_EQ(got[0].type, HealthEventType::kDriftOnset);
  EXPECT_EQ(got[1].type, HealthEventType::kDriftClear);
  // Onset during the ramp, clear on the plateau.
  EXPECT_LE(got[0].time, arrivals[120]);
  EXPECT_GT(got[1].time, arrivals[120]);
  EXPECT_FALSE(an.stats().find("M")->drift_active);
}

TEST(StreamDetectors, StallWatchdogFiresAtDeadlineAndClearsOnReturn) {
  // M goes silent for five periods while CLK keeps the stream clock
  // moving. The watchdog deadline is last arrival + 4 * baseline; the
  // onset must carry exactly that time, the clear the returning arrival.
  std::vector<Duration> arrivals = periodic(20);
  const Duration last_before_gap = arrivals.back();
  const Duration back = last_before_gap + kPeriod * 5;
  for (int i = 0; i < 10; ++i) arrivals.push_back(back + kPeriod * i);

  TraceBuilder tb;
  tb.add_message("M", arrivals);
  tb.add_message("CLK", periodic(320, Duration::ms(1)));
  const auto stream = tb.build();

  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());

  const auto got = events_for(an, "M");
  ASSERT_EQ(got.size(), 2u) << stream_stats_to_text(an.stats());
  EXPECT_EQ(got[0].type, HealthEventType::kStallOnset);
  EXPECT_EQ(got[0].time, last_before_gap + kPeriod * 4);
  EXPECT_EQ(got[1].type, HealthEventType::kStallClear);
  EXPECT_EQ(got[1].time, back);
  EXPECT_EQ(got[1].frame_index, TraceBuilder::completion_frame(stream, "M", back));

  // The re-anchored baseline must not have absorbed the stall gap.
  EXPECT_EQ(an.stats().find("M")->period_baseline, kPeriod);
}

TEST(StreamDetectors, SilentTailIsFlaggedByAdvanceTo) {
  // A message that stops before the end of the run only stalls if
  // something advances the clock past its watchdog — advance_to() is that
  // something for a bounded capture.
  TraceBuilder tb;
  tb.add_message("M", periodic(20));
  const auto stream = tb.build();
  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());
  EXPECT_TRUE(an.events().empty());
  an.advance_to(stream.back().time + kPeriod * 10);
  const auto got = events_for(an, "M");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, HealthEventType::kStallOnset);
  EXPECT_EQ(got[0].time, stream.back().time + kPeriod * 4);
  EXPECT_TRUE(an.stats().find("M")->stall_active);
}

TEST(StreamDetectors, ArrhythmiaRaisesOnSustainedIrregularityAndClears) {
  // Alternating displacement growing gently (100 us per arrival): every
  // delta stays inside the jitter envelope, which adapts faster than the
  // irregularity grows — no burst, but the deviation EWMA climbs past
  // 25 % of the period -> arrhythmia; perfect rhythm afterwards decays it
  // back below 12.5 % -> clear.
  std::vector<Duration> arrivals = periodic(20);
  const auto at = [&](int i) { return kPeriod * i + kResponse; };
  Duration amp = Duration::zero();
  for (int i = 20; i < 60; ++i) {
    amp += Duration::us(100);
    arrivals.push_back(at(i) + ((i % 2 == 0) ? amp : -amp));
  }
  for (int i = 60; i < 100; ++i) arrivals.push_back(at(i));

  TraceBuilder tb;
  tb.add_message("M", arrivals);
  const auto stream = tb.build();
  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());

  const auto got = events_for(an, "M");
  std::vector<HealthEventType> types;
  for (const auto& e : got) types.push_back(e.type);
  // The whole point: sustained irregularity raises arrhythmia, never a
  // jitter burst (every sample individually looks plausible).
  EXPECT_EQ(std::count(types.begin(), types.end(), HealthEventType::kJitterBurstOnset), 0)
      << stream_stats_to_text(an.stats());
  ASSERT_TRUE(std::count(types.begin(), types.end(), HealthEventType::kArrhythmiaOnset) == 1 &&
              std::count(types.begin(), types.end(), HealthEventType::kArrhythmiaClear) == 1)
      << stream_stats_to_text(an.stats());
  const auto onset = std::find(types.begin(), types.end(), HealthEventType::kArrhythmiaOnset);
  const auto clear = std::find(types.begin(), types.end(), HealthEventType::kArrhythmiaClear);
  EXPECT_LT(onset - types.begin(), clear - types.begin());
  // Onset inside the irregular episode, clear after rhythm returned.
  EXPECT_LE(got[static_cast<std::size_t>(onset - types.begin())].time, arrivals[59]);
  EXPECT_GT(got[static_cast<std::size_t>(clear - types.begin())].time, arrivals[60]);
  EXPECT_FALSE(an.stats().find("M")->arrhythmia_active);
}

TEST(StreamDetectors, BoundViolationEmittedOnceAndCounted) {
  // Hand-built BusResult: bound 1 ms for M, diverged bound for D. Three
  // completions of M above the bound -> one kBoundViolation event,
  // violation count 3; D can never violate.
  BusResult analysis;
  MessageResult rm;
  rm.name = "M";
  rm.wcrt = Duration::ms(1);
  analysis.messages.push_back(rm);
  MessageResult rd;
  rd.name = "D";
  rd.wcrt = Duration::infinite();
  rd.diverged = true;
  analysis.messages.push_back(rd);

  TraceBuilder tb;
  std::vector<TraceEvent>& ev = tb.events;
  for (int i = 0; i < 12; ++i) {
    const Duration rel = kPeriod * i;
    const Duration latency = i >= 9 ? Duration::ms(2) : Duration::us(500);
    ev.push_back({rel, TraceEventType::kRelease, "M", i});
    ev.push_back({rel + latency, TraceEventType::kTxEnd, "M", i});
    ev.push_back({rel, TraceEventType::kRelease, "D", i});
    ev.push_back({rel + Duration::ms(5), TraceEventType::kTxEnd, "D", i});
  }
  const auto stream = tb.build();

  StreamAnalyzer an;
  an.set_bounds(analysis);
  an.ingest(stream.data(), stream.size());

  const auto got_m = events_for(an, "M");
  ASSERT_EQ(got_m.size(), 1u) << stream_stats_to_text(an.stats());
  EXPECT_EQ(got_m[0].type, HealthEventType::kBoundViolation);
  EXPECT_EQ(got_m[0].observed_ns, Duration::ms(2).count_ns());
  EXPECT_EQ(got_m[0].baseline_ns, Duration::ms(1).count_ns());
  EXPECT_TRUE(events_for(an, "D").empty());

  const StreamStats stats = an.stats();
  EXPECT_EQ(stats.find("M")->bound_violations, 3);
  EXPECT_TRUE(stats.find("M")->violation());
  EXPECT_FALSE(stats.find("D")->violation());
  EXPECT_EQ(stats.violations, 1);
}

TEST(StreamDetectors, EventLogIsBoundedAndDropsAreCounted) {
  StreamConfig cfg;
  cfg.max_events = 4;
  StreamAnalyzer an{cfg};
  BusResult analysis;
  for (int m = 0; m < 8; ++m) {
    MessageResult r;
    r.name = "M" + std::to_string(m);
    r.wcrt = Duration::us(1);
    analysis.messages.push_back(r);
  }
  an.set_bounds(analysis);
  std::vector<TraceEvent> ev;
  for (int m = 0; m < 8; ++m) {
    const std::string name = "M" + std::to_string(m);
    ev.push_back({Duration::ms(m), TraceEventType::kRelease, name, 0});
    ev.push_back({Duration::ms(m) + Duration::us(50), TraceEventType::kTxEnd, name, 0});
  }
  an.ingest(ev.data(), ev.size());
  EXPECT_EQ(an.events().size(), 4u);
  EXPECT_EQ(an.events_emitted(), 8);
  EXPECT_EQ(an.stats().dropped_events, 4);
  EXPECT_EQ(an.stats().violations, 8);  // state still tracks dropped events
}

TEST(StreamDetectors, TextAndJsonRenderersNameActiveConditions) {
  TraceBuilder tb;
  tb.add_message("M", periodic(20));
  const auto stream = tb.build();
  StreamAnalyzer an;
  an.ingest(stream.data(), stream.size());
  an.advance_to(stream.back().time + kPeriod * 10);  // leaves M stalled

  const StreamStats stats = an.stats();
  const std::string text = stream_stats_to_text(stats);
  EXPECT_NE(text.find(" stall"), std::string::npos) << text;
  const std::string json = stream_stats_to_json(stats);
  EXPECT_NE(json.find("\"active\":[\"stall\"]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"frames\":40"), std::string::npos) << json;
}

}  // namespace
}  // namespace symcan::stream

// JSONL trace reader: parse ∘ serialize identity against the sim
// exporter, full diagnostic coverage of the malformed-line grammar, and
// the lenient/strict policy split — the PR 5 ingest contract applied to
// the stream layer's trust boundary.

#include "symcan/stream/trace_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "symcan/sim/simulator.hpp"
#include "symcan/sim/trace_export.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::stream {
namespace {

std::optional<Trace> parse(const std::string& text,
                           DiagnosticPolicy policy = DiagnosticPolicy::kLenient,
                           Diagnostics* out = nullptr) {
  Diagnostics diags{policy};
  auto r = trace_from_jsonl(text, diags);
  if (out != nullptr) *out = diags;
  return r;
}

TEST(TraceReader, RoundtripsSimulatorExportExactly) {
  PowertrainConfig wl;
  wl.seed = 11;
  wl.message_count = 10;
  wl.ecu_count = 3;
  wl.target_utilization = 0.5;
  const KMatrix km = generate_powertrain(wl);
  SimConfig sim;
  sim.duration = Duration::ms(100);
  sim.seed = 11;
  sim.record_trace = true;
  sim.errors = SimErrorProcess::sporadic(Duration::ms(5));
  const SimResult res = simulate(km, sim);
  ASSERT_FALSE(res.trace.events().empty());

  const std::string jsonl = trace_to_jsonl(res.trace);
  Diagnostics diags;
  const auto parsed = trace_from_jsonl(jsonl, diags);
  ASSERT_TRUE(parsed.has_value()) << diags.format();
  EXPECT_TRUE(diags.ok());
  EXPECT_EQ(diags.warning_count(), 0u);

  const auto& a = res.trace.events();
  const auto& b = parsed->events();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time) << i;
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].message, b[i].message) << i;
    EXPECT_EQ(a[i].instance, b[i].instance) << i;
  }

  // Second hop: serialize the parsed trace and compare bytes.
  EXPECT_EQ(trace_to_jsonl(*parsed), jsonl);
}

TEST(TraceReader, AcceptsAnyKeyOrderAndSkipsBlankLines) {
  const std::string text =
      "{\"type\":\"release\",\"t_ns\":1000,\"instance\":0,\"message\":\"m\"}\n"
      "\n"
      "   \n"
      "{\"instance\":1,\"message\":\"m\",\"t_ns\":2000,\"type\":\"tx_end\"}\n";
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events().size(), 2u);
  EXPECT_EQ(parsed->events()[0].type, TraceEventType::kRelease);
  EXPECT_EQ(parsed->events()[0].time, Duration::us(1));
  EXPECT_EQ(parsed->events()[1].type, TraceEventType::kTxEnd);
  EXPECT_EQ(parsed->events()[1].instance, 1);
}

TEST(TraceReader, DecodesStringEscapesIncludingSurrogatePairs) {
  const std::string text =
      "{\"t_ns\":0,\"type\":\"release\",\"message\":\"a\\\"b\\\\c\\n\\u0041\\u00e9\\ud83d\\ude00\","
      "\"instance\":0}\n";
  const auto parsed = parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events().size(), 1u);
  EXPECT_EQ(parsed->events()[0].message,
            "a\"b\\c\nA\xc3\xa9\xf0\x9f\x98\x80");  // é and 😀 in UTF-8
  // The exporter re-escapes what must be escaped; a parse of its output
  // yields the same event again.
  const auto again = parse(trace_to_jsonl(*parsed));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->events()[0].message, parsed->events()[0].message);
}

struct BadLine {
  const char* label;
  const char* line;
};

TEST(TraceReader, MalformedLinesAreLineNumberedErrors) {
  const BadLine cases[] = {
      {"not json", "nonsense"},
      {"unterminated object", "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\""},
      {"missing key", "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\"}"},
      {"duplicate key", "{\"t_ns\":1,\"t_ns\":2,\"type\":\"release\",\"message\":\"m\",\"instance\":0}"},
      {"non-integer t_ns", "{\"t_ns\":1.5,\"type\":\"release\",\"message\":\"m\",\"instance\":0}"},
      {"negative t_ns", "{\"t_ns\":-5,\"type\":\"release\",\"message\":\"m\",\"instance\":0}"},
      {"unknown slug", "{\"t_ns\":1,\"type\":\"warp\",\"message\":\"m\",\"instance\":0}"},
      {"wrong value type", "{\"t_ns\":\"1\",\"type\":\"release\",\"message\":\"m\",\"instance\":0}"},
      {"nested container", "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":[0]}"},
      {"trailing garbage", "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0} x"},
  };
  for (const BadLine& c : cases) {
    SCOPED_TRACE(c.label);
    Diagnostics diags;
    // A good line after the bad one proves the error is attributed to the
    // right line and parsing visited the whole input.
    const std::string text = std::string(c.line) + "\n" +
                             "{\"t_ns\":9,\"type\":\"loss\",\"message\":\"m\",\"instance\":0}\n";
    const auto parsed = parse(text, DiagnosticPolicy::kLenient, &diags);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_FALSE(diags.ok());
    ASSERT_FALSE(diags.entries().empty());
    EXPECT_EQ(diags.entries().front().line, 1u);
    EXPECT_EQ(diags.entries().front().severity, Severity::kError);
  }
}

TEST(TraceReader, UnknownScalarKeyWarnsLenientlyAndFailsStrictly) {
  const std::string text =
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0,\"extra\":7}\n";
  Diagnostics lenient_diags;
  const auto lenient = parse(text, DiagnosticPolicy::kLenient, &lenient_diags);
  ASSERT_TRUE(lenient.has_value()) << lenient_diags.format();
  EXPECT_EQ(lenient_diags.warning_count(), 1u);
  EXPECT_EQ(lenient->events().size(), 1u);

  Diagnostics strict_diags;
  const auto strict = parse(text, DiagnosticPolicy::kStrict, &strict_diags);
  EXPECT_FALSE(strict.has_value());
  EXPECT_FALSE(strict_diags.ok());
}

TEST(TraceReader, BackwardsTimestampsGetOneWarningForTheWholeInput) {
  const std::string text =
      "{\"t_ns\":3000,\"type\":\"release\",\"message\":\"m\",\"instance\":0}\n"
      "{\"t_ns\":1000,\"type\":\"release\",\"message\":\"m\",\"instance\":1}\n"
      "{\"t_ns\":500,\"type\":\"release\",\"message\":\"m\",\"instance\":2}\n";
  Diagnostics diags;
  const auto parsed = parse(text, DiagnosticPolicy::kLenient, &diags);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events().size(), 3u);
  EXPECT_EQ(diags.warning_count(), 1u) << diags.format();
}

TEST(TraceReader, HostileInputIsBoundedNotBallooned) {
  std::string text;
  for (int i = 0; i < 10'000; ++i) text += "garbage line\n";
  Diagnostics diags;
  const auto parsed = parse(text, DiagnosticPolicy::kLenient, &diags);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_TRUE(diags.exhausted());
  EXPECT_LE(diags.entries().size(), Diagnostics::kMaxRecorded + 1);
}

TEST(TraceReader, ThrowingWrapperCarriesDiagnostics) {
  EXPECT_NO_THROW(trace_from_jsonl(std::string{
      "{\"t_ns\":1,\"type\":\"release\",\"message\":\"m\",\"instance\":0}\n"}));
  try {
    trace_from_jsonl(std::string{"broken\n"});
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_FALSE(e.diagnostics().ok());
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(TraceReader, LoadsFromFile) {
  const std::string path = "symcan_trace_reader_test.jsonl";
  {
    std::ofstream f(path);
    f << "{\"t_ns\":1,\"type\":\"tx_start\",\"message\":\"m\",\"instance\":0}\n";
  }
  const Trace t = load_trace_jsonl(path);
  std::remove(path.c_str());
  ASSERT_EQ(t.events().size(), 1u);
  EXPECT_EQ(t.events()[0].type, TraceEventType::kTxStart);
}

}  // namespace
}  // namespace symcan::stream

// Chunk-invariance determinism: ingesting the same event stream in
// chunks of 1, 7 and 4096 must produce bit-identical HealthEvent
// sequences and identical stats snapshots. The analyzer's contract is
// that state advances strictly per event — batching exists only for obs
// accounting — so any divergence means hidden batch-boundary state.
// Runs under the `determinism` ctest label (and therefore under TSan).

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "symcan/analysis/can_rta.hpp"
#include "symcan/analysis/error_model.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/stream/analyzer.hpp"
#include "symcan/stream/health.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::stream {
namespace {

struct IngestRun {
  std::vector<HealthEvent> events;
  std::string stats_json;
  std::int64_t frames = 0;
};

IngestRun ingest_chunked(const std::vector<TraceEvent>& stream, const BusResult& bounds,
                   std::size_t chunk, Duration span) {
  StreamAnalyzer an;
  an.set_bounds(bounds);
  for (std::size_t i = 0; i < stream.size(); i += chunk)
    an.ingest(stream.data() + i, std::min(chunk, stream.size() - i));
  an.advance_to(span);
  IngestRun r;
  r.events = an.events();
  r.stats_json = stream_stats_to_json(an.stats());
  r.frames = an.frames_ingested();
  return r;
}

TEST(StreamChunkInvariance, ChunkSizeNeverChangesEventsOrStats) {
  // A workload lively enough to exercise every detector path: errors and
  // retransmits, jitter, and an unsound bound pairing so kBoundViolation
  // fires too.
  PowertrainConfig wl;
  wl.seed = 42;
  wl.message_count = 16;
  wl.ecu_count = 4;
  wl.target_utilization = 0.6;
  KMatrix km = generate_powertrain(wl);
  assume_jitter_fraction(km, 0.2, /*override_known=*/true);

  CanRtaConfig rta;
  rta.deadline_override = DeadlinePolicy::kPeriod;  // no error model: unsound
  SimConfig sim;
  sim.duration = Duration::ms(500);
  sim.seed = 99;
  sim.stuffing = StuffingMode::kRandom;
  sim.randomize_jitter = true;
  sim.record_trace = true;
  sim.errors = SimErrorProcess::sporadic(Duration::ms(5));

  const BusResult bounds = CanRta{km, rta}.analyze();
  const SimResult res = simulate(km, sim);
  ASSERT_GT(res.trace.events().size(), 1000u);

  const IngestRun one = ingest_chunked(res.trace.events(), bounds, 1, res.simulated);
  const IngestRun seven = ingest_chunked(res.trace.events(), bounds, 7, res.simulated);
  const IngestRun big = ingest_chunked(res.trace.events(), bounds, 4096, res.simulated);

  EXPECT_EQ(one.frames, static_cast<std::int64_t>(res.trace.events().size()));
  EXPECT_EQ(one.frames, seven.frames);
  EXPECT_EQ(one.frames, big.frames);

  // Bit-identical event sequences (HealthEvent has defaulted ==, so this
  // compares time, type, message, observed, baseline and frame index).
  EXPECT_EQ(one.events, seven.events);
  EXPECT_EQ(one.events, big.events);
  EXPECT_EQ(one.stats_json, seven.stats_json);
  EXPECT_EQ(one.stats_json, big.stats_json);

  // The run must actually have emitted something, or the property is
  // vacuous for the event half.
  EXPECT_FALSE(one.events.empty());
  EXPECT_EQ(health_events_to_jsonl(one.events), health_events_to_jsonl(big.events));
}

TEST(StreamChunkInvariance, SingleEventIngestMatchesWholeTraceIngest) {
  PowertrainConfig wl;
  wl.seed = 7;
  wl.message_count = 8;
  wl.ecu_count = 3;
  wl.target_utilization = 0.4;
  const KMatrix km = generate_powertrain(wl);
  SimConfig sim;
  sim.duration = Duration::ms(200);
  sim.seed = 7;
  sim.record_trace = true;
  const SimResult res = simulate(km, sim);

  StreamAnalyzer whole;
  whole.ingest(res.trace);
  StreamAnalyzer by_one;
  for (const TraceEvent& e : res.trace.events()) by_one.ingest(e);

  EXPECT_EQ(whole.events(), by_one.events());
  EXPECT_EQ(stream_stats_to_json(whole.stats()), stream_stats_to_json(by_one.stats()));
}

}  // namespace
}  // namespace symcan::stream

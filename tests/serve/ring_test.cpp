#include "symcan/serve/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace symcan::serve {
namespace {

/// The ring's accounting contract: at every quiescent point, every push
/// is accounted as exactly one outcome, and every accepted request is
/// queued, popped, or a named drop-oldest casualty.
void expect_accounted(const BoundedRing<int>& ring) {
  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, s.accepted + s.rejected + s.timed_out);
  EXPECT_EQ(s.accepted,
            s.popped + s.dropped_oldest + static_cast<std::int64_t>(ring.size()));
}

RingConfig tiny(OverflowPolicy policy, std::size_t capacity = 4) {
  RingConfig cfg;
  cfg.capacity = capacity;
  cfg.overflow = policy;
  cfg.block_deadline = Duration::ms(20);
  return cfg;
}

TEST(RingTest, RejectsZeroCapacity) {
  RingConfig cfg;
  cfg.capacity = 0;
  EXPECT_THROW(BoundedRing<int>{cfg}, std::invalid_argument);
}

TEST(RingTest, RejectsInvertedPressureThresholds) {
  RingConfig cfg;
  cfg.elevated_fraction = 0.9;
  cfg.saturated_fraction = 0.5;
  EXPECT_THROW(BoundedRing<int>{cfg}, std::invalid_argument);
}

TEST(RingTest, AcceptsUntilFullThenRejects) {
  BoundedRing<int> ring{tiny(OverflowPolicy::kReject)};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.push(i), PushOutcome::kAccepted);
    expect_accounted(ring);
  }
  EXPECT_EQ(ring.push(99), PushOutcome::kRejected);
  expect_accounted(ring);
  EXPECT_EQ(ring.size(), 4u);
  // The rejected push left the queue untouched.
  EXPECT_EQ(ring.pop_batch(8), (std::vector<int>{0, 1, 2, 3}));
  expect_accounted(ring);
}

TEST(RingTest, DropOldestEvictsFifoHeadAndNamesTheVictim) {
  BoundedRing<int> ring{tiny(OverflowPolicy::kDropOldest)};
  for (int i = 0; i < 4; ++i) ring.push(i);
  std::optional<int> victim;
  EXPECT_EQ(ring.push(4, &victim), PushOutcome::kReplacedOldest);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0);
  expect_accounted(ring);
  EXPECT_EQ(ring.pop_batch(8), (std::vector<int>{1, 2, 3, 4}));
  expect_accounted(ring);
  const RingStats s = ring.stats();
  EXPECT_EQ(s.dropped_oldest, 1);
  EXPECT_EQ(s.accepted, 5);
  EXPECT_EQ(s.rejected, 0);
}

TEST(RingTest, BlockWithDeadlineTimesOutWithoutAConsumer) {
  BoundedRing<int> ring{tiny(OverflowPolicy::kBlockWithDeadline, 1)};
  EXPECT_EQ(ring.push(1), PushOutcome::kAccepted);
  EXPECT_EQ(ring.push(2), PushOutcome::kTimedOut);
  expect_accounted(ring);
  EXPECT_EQ(ring.stats().timed_out, 1);
  EXPECT_EQ(ring.pop_batch(8), (std::vector<int>{1}));
}

TEST(RingTest, BlockWithDeadlineAdmitsWhenAConsumerDrains) {
  RingConfig cfg = tiny(OverflowPolicy::kBlockWithDeadline, 1);
  cfg.block_deadline = Duration::ms(2000);  // Generous; the consumer is quick.
  BoundedRing<int> ring{cfg};
  ASSERT_EQ(ring.push(1), PushOutcome::kAccepted);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ring.pop_batch(1);
  });
  EXPECT_EQ(ring.push(2), PushOutcome::kAccepted);
  consumer.join();
  expect_accounted(ring);
  EXPECT_EQ(ring.pop_batch(8), (std::vector<int>{2}));
  EXPECT_EQ(ring.stats().timed_out, 0);
}

TEST(RingTest, PressureWalksEveryTransitionBothWays) {
  RingConfig cfg = tiny(OverflowPolicy::kReject, 10);
  cfg.elevated_fraction = 0.5;
  cfg.saturated_fraction = 0.9;
  BoundedRing<int> ring{cfg};

  EXPECT_EQ(ring.pressure(), PressureState::kOk);
  for (int i = 0; i < 4; ++i) ring.push(i);
  EXPECT_EQ(ring.pressure(), PressureState::kOk);  // 4/10 < 0.5
  ring.push(4);
  EXPECT_EQ(ring.pressure(), PressureState::kElevated);  // 5/10 >= 0.5
  for (int i = 5; i < 9; ++i) ring.push(i);
  EXPECT_EQ(ring.pressure(), PressureState::kSaturated);  // 9/10 >= 0.9
  ring.pop_batch(1);
  EXPECT_EQ(ring.pressure(), PressureState::kElevated);  // back to 8/10
  ring.pop_batch(4);
  EXPECT_EQ(ring.pressure(), PressureState::kOk);  // 4/10
  expect_accounted(ring);
}

TEST(RingTest, ConcurrentProducersAccountEveryPush) {
  // 8 producers, 200 pushes each, against a small ring with a draining
  // consumer: whatever interleaving happens, the accounting identity
  // must hold and every accepted item must come out exactly once.
  RingConfig cfg = tiny(OverflowPolicy::kReject, 64);
  BoundedRing<int> ring{cfg};
  std::atomic<bool> done{false};
  std::atomic<std::int64_t> consumed{0};
  std::thread consumer([&] {
    while (!done.load() || ring.size() > 0)
      consumed.fetch_add(static_cast<std::int64_t>(ring.pop_batch(16).size()));
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 8; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < 200; ++i) ring.push(p * 200 + i);
    });
  for (auto& t : producers) t.join();
  done.store(true);
  consumer.join();

  const RingStats s = ring.stats();
  EXPECT_EQ(s.pushes, 1600);
  EXPECT_EQ(s.pushes, s.accepted + s.rejected + s.timed_out);
  EXPECT_EQ(s.accepted, s.popped);
  EXPECT_EQ(consumed.load(), s.popped);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(RingTest, EnumSpellingsRoundTrip) {
  for (const OverflowPolicy p : {OverflowPolicy::kReject, OverflowPolicy::kDropOldest,
                                 OverflowPolicy::kBlockWithDeadline}) {
    OverflowPolicy back{};
    ASSERT_TRUE(overflow_policy_from_string(to_string(p), back));
    EXPECT_EQ(back, p);
  }
  OverflowPolicy ignored{};
  EXPECT_FALSE(overflow_policy_from_string("fifo", ignored));
  EXPECT_STREQ(to_string(PressureState::kOk), "ok");
  EXPECT_STREQ(to_string(PressureState::kElevated), "elevated");
  EXPECT_STREQ(to_string(PressureState::kSaturated), "saturated");
  EXPECT_STREQ(to_string(PushOutcome::kAccepted), "accepted");
  EXPECT_STREQ(to_string(PushOutcome::kReplacedOldest), "replaced-oldest");
  EXPECT_STREQ(to_string(PushOutcome::kRejected), "rejected");
  EXPECT_STREQ(to_string(PushOutcome::kTimedOut), "timed-out");
}

}  // namespace
}  // namespace symcan::serve

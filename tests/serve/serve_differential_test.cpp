// The service's headline determinism promise: a serve response for
// analyze / explain / validate is byte-for-byte what the one-shot CLI
// prints for the same question, and `serve --stdio` emits exactly the
// bytes the in-process ServeCore produces. Labeled `determinism` so CI
// also runs it under TSan.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/cli/commands.hpp"
#include "symcan/serve/core.hpp"
#include "symcan/serve/request.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::serve {
namespace {

class ServeDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PowertrainConfig cfg = PowertrainConfig::case_study();
    cfg.message_count = 16;
    cfg.ecu_count = 4;
    cfg.target_utilization = 0.40;
    const KMatrix km = generate_powertrain(cfg);
    csv_ = kmatrix_to_csv(km);
    message_ = km.messages().front().name;
    path_ = ::testing::TempDir() + "/" + std::to_string(::getpid()) + "_serve_diff.csv";
    save_kmatrix(km, path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  struct CliRun {
    int exit_code = 0;
    std::string out;
  };

  CliRun run_cli_args(const std::vector<std::string>& args) {
    std::ostringstream out, err;
    const int rc = cli::run_cli(args, out, err);
    EXPECT_EQ(err.str(), "") << "CLI wrote to stderr for " << args.front();
    return {rc, out.str()};
  }

  /// The differential check itself: same question via both doors, same
  /// bytes and same exit code out.
  void expect_matches_cli(const ServeRequest& req, const std::vector<std::string>& cli_args) {
    SCOPED_TRACE(request_to_jsonl(req));
    ServeCore core;
    const ServeResponse resp = core.handle(req);
    const CliRun cli = run_cli_args(cli_args);
    EXPECT_EQ(resp.output, cli.out);
    EXPECT_EQ(resp.exit_code, cli.exit_code);
    ASSERT_TRUE(resp.status == ResponseStatus::kOk || resp.status == ResponseStatus::kFailed);
  }

  ServeRequest base_request(RequestKind kind) {
    ServeRequest req;
    req.id = "diff";
    req.kind = kind;
    req.matrix_csv = csv_;
    return req;
  }

  std::string csv_;
  std::string message_;
  std::string path_;
};

TEST_F(ServeDifferentialTest, AnalyzeDefaultPreset) {
  expect_matches_cli(base_request(RequestKind::kAnalyze), {"analyze", path_});
}

TEST_F(ServeDifferentialTest, AnalyzeWorstCaseWithJitter) {
  ServeRequest req = base_request(RequestKind::kAnalyze);
  req.preset = pipeline::AssumptionPreset::kWorstCase;
  req.jitter = 0.25;
  expect_matches_cli(req, {"analyze", path_, "--worst-case", "--jitter", "0.25"});
}

TEST_F(ServeDifferentialTest, AnalyzeBestCaseOverrideKnown) {
  ServeRequest req = base_request(RequestKind::kAnalyze);
  req.preset = pipeline::AssumptionPreset::kBestCase;
  req.jitter = 0.10;
  req.override_known = true;
  expect_matches_cli(req,
                     {"analyze", path_, "--best-case", "--jitter", "0.10", "--override-known"});
}

TEST_F(ServeDifferentialTest, ExplainTextAndJson) {
  ServeRequest req = base_request(RequestKind::kExplain);
  req.message = message_;
  expect_matches_cli(req, {"explain", path_, message_});
  req.json = true;
  req.preset = pipeline::AssumptionPreset::kWorstCase;
  expect_matches_cli(req, {"explain", path_, message_, "--worst-case", "--json"});
}

TEST_F(ServeDifferentialTest, ValidateSeededShortRun) {
  ServeRequest req = base_request(RequestKind::kValidate);
  req.millis = 200;
  req.seed = 5;
  expect_matches_cli(req, {"validate", path_, "--millis", "200", "--seed", "5"});
}

TEST_F(ServeDifferentialTest, ValidateJsonWithSporadicErrors) {
  ServeRequest req = base_request(RequestKind::kValidate);
  req.millis = 200;
  req.seed = 9;
  req.errors = "sporadic";
  req.json = true;
  expect_matches_cli(
      req, {"validate", path_, "--millis", "200", "--seed", "9", "--errors", "sporadic",
            "--json"});
  // An explicit gap must match the CLI's --error-gap-ms spelling too.
  req.error_gap_ms = 55;
  expect_matches_cli(req, {"validate", path_, "--millis", "200", "--seed", "9", "--errors",
                           "sporadic", "--error-gap-ms", "55", "--json"});
}

TEST_F(ServeDifferentialTest, CachedSecondAnswerIsByteIdentical) {
  // One core, same request twice: the second answer comes out of the
  // sharded RTA cache and the matrix memo, and must not differ by a bit.
  ServeCore core;
  const ServeRequest req = base_request(RequestKind::kAnalyze);
  const ServeResponse cold = core.handle(req);
  const ServeResponse warm = core.handle(req);
  EXPECT_GT(core.rta_cache().stats().hits, 0);
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_EQ(cold.exit_code, warm.exit_code);
}

TEST_F(ServeDifferentialTest, StdioTransportEmitsExactlyServeCoreBytes) {
  std::vector<ServeRequest> reqs;
  reqs.push_back(base_request(RequestKind::kAnalyze));
  reqs.back().id = "r1";
  reqs.push_back(base_request(RequestKind::kExplain));
  reqs.back().id = "r2";
  reqs.back().message = message_;
  reqs.push_back(base_request(RequestKind::kValidate));
  reqs.back().id = "r3";
  reqs.back().millis = 200;

  std::string stdin_text;
  for (const ServeRequest& r : reqs) stdin_text += request_to_jsonl(r) + "\n";

  // Expected bytes: a fresh core handling the same sequence in order
  // (health is excluded here — its counters depend on transport
  // bookkeeping by design).
  std::string expected;
  {
    ServeCore core;
    for (const ServeRequest& r : reqs) expected += response_to_jsonl(core.handle(r)) + "\n";
  }

  std::istringstream in{stdin_text};
  std::ostringstream out, err;
  EXPECT_EQ(cli::run_cli({"serve", "--stdio"}, in, out, err), 0);
  EXPECT_EQ(err.str(), "");
  EXPECT_EQ(out.str(), expected);
}

TEST_F(ServeDifferentialTest, StdioRunsAreReproducible) {
  ServeRequest req = base_request(RequestKind::kValidate);
  req.id = "rep";
  req.millis = 200;
  req.seed = 3;
  const std::string stdin_text = request_to_jsonl(req) + "\n";

  std::string first;
  for (int round = 0; round < 2; ++round) {
    std::istringstream in{stdin_text};
    std::ostringstream out, err;
    EXPECT_EQ(cli::run_cli({"serve", "--stdio", "--jobs", "2"}, in, out, err), 0);
    if (round == 0)
      first = out.str();
    else
      EXPECT_EQ(out.str(), first);
  }
}

}  // namespace
}  // namespace symcan::serve

#include "symcan/serve/core.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::serve {
namespace {

std::string small_matrix_csv(std::uint64_t seed = 42) {
  PowertrainConfig cfg;
  cfg.seed = seed;
  cfg.message_count = 12;
  return kmatrix_to_csv(generate_powertrain(cfg));
}

ServeRequest analyze_request(const std::string& csv, const std::string& id = "a1") {
  ServeRequest req;
  req.id = id;
  req.kind = RequestKind::kAnalyze;
  req.matrix_csv = csv;
  return req;
}

TEST(ServeCoreTest, AnalyzeProducesOutputAndCounts) {
  ServeCore core;
  const ServeResponse resp = core.handle(analyze_request(small_matrix_csv()));
  EXPECT_EQ(resp.id, "a1");
  EXPECT_EQ(resp.kind, RequestKind::kAnalyze);
  ASSERT_TRUE(resp.status == ResponseStatus::kOk || resp.status == ResponseStatus::kFailed);
  EXPECT_NE(resp.output.find("bus "), std::string::npos);
  EXPECT_NE(resp.output.find("misses:"), std::string::npos);
  EXPECT_EQ(resp.exit_code, resp.status == ResponseStatus::kOk ? 0 : 1);
  EXPECT_EQ(core.handled(), 1);
}

TEST(ServeCoreTest, MalformedMatrixYieldsInvalidNotThrow) {
  ServeCore core;
  const ServeResponse resp = core.handle(analyze_request("definitely,not,a\nkmatrix"));
  EXPECT_EQ(resp.status, ResponseStatus::kInvalid);
  EXPECT_EQ(resp.exit_code, 2);
  EXPECT_FALSE(resp.diagnostics.empty());
  EXPECT_EQ(core.handled(), 1);
}

TEST(ServeCoreTest, UnknownExplainTargetYieldsInvalid) {
  ServeCore core;
  ServeRequest req;
  req.id = "e1";
  req.kind = RequestKind::kExplain;
  req.matrix_csv = small_matrix_csv();
  req.message = "NoSuchMessage";
  const ServeResponse resp = core.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kInvalid);
  EXPECT_EQ(resp.exit_code, 2);
  ASSERT_FALSE(resp.diagnostics.empty());
  EXPECT_NE(resp.diagnostics.front().message.find("NoSuchMessage"), std::string::npos);
}

TEST(ServeCoreTest, HealthReportsTheWholeDashboard) {
  ServeCore core;
  ServeRequest req;
  req.id = "h1";
  req.kind = RequestKind::kHealth;
  const ServeResponse resp = core.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  for (const char* key :
       {"\"mode\"", "\"pressure\"", "\"ring\"", "\"captain\"", "\"rta_cache\"",
        "\"matrix_cache\"", "\"requests\"", "\"uptime_ms\"", "\"build\"", "\"window\"",
        "\"slo\"", "\"flight_recorder\""})
    EXPECT_NE(resp.health_json.find(key), std::string::npos) << key;
  EXPECT_NE(resp.health_json.find("\"mode\":\"full\""), std::string::npos);
}

TEST(ServeCoreTest, TelemetryKindReturnsWindowedStats) {
  ServeConfig cfg;
  cfg.build_info = "symcan-test";
  ServeCore core{cfg};
  core.handle(analyze_request(small_matrix_csv(), "t0"));

  ServeRequest req;
  req.id = "t1";
  req.kind = RequestKind::kTelemetry;
  const ServeResponse resp = core.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kOk);
  EXPECT_EQ(resp.exit_code, 0);
  for (const char* key :
       {"\"uptime_ms\"", "\"window\"", "\"windowed_total\"", "\"rate_per_sec\"",
        "\"service_us\"", "\"p95\"", "\"slo\"", "\"analyze\"", "\"burn_rate\"",
        "\"flight_recorder\""})
    EXPECT_NE(resp.health_json.find(key), std::string::npos) << key << " in " << resp.health_json;
  // The analyze request above must already be visible in the window.
  EXPECT_EQ(resp.health_json.find("\"windowed_total\":0,"), std::string::npos) << resp.health_json;
}

TEST(ServeCoreTest, BatchIsBitIdenticalToOneAtATime) {
  const std::string csv_a = small_matrix_csv(1);
  const std::string csv_b = small_matrix_csv(2);
  std::vector<ServeRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    ServeRequest req = analyze_request(i % 2 ? csv_a : csv_b, "b" + std::to_string(i));
    if (i == 3) {
      req.kind = RequestKind::kValidate;
      req.millis = 50;
    }
    reqs.push_back(std::move(req));
  }

  ServeCore batched;
  const std::vector<ServeResponse> batch = batched.handle_batch(reqs);

  ServeCore oneshot;
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const ServeResponse solo = oneshot.handle(reqs[i]);
    SCOPED_TRACE(reqs[i].id);
    EXPECT_EQ(batch[i].id, solo.id);
    EXPECT_EQ(batch[i].status, solo.status);
    EXPECT_EQ(batch[i].exit_code, solo.exit_code);
    EXPECT_EQ(batch[i].output, solo.output);
  }
}

TEST(ServeCoreTest, RepeatSubmissionsHitBothCaches) {
  ServeCore core;
  const std::string csv = small_matrix_csv();
  const ServeResponse first = core.handle(analyze_request(csv, "c1"));
  const ServeResponse second = core.handle(analyze_request(csv, "c2"));
  EXPECT_EQ(first.output, second.output);
  EXPECT_EQ(first.exit_code, second.exit_code);

  const std::string health = core.health_json();
  // Second pass recalled the parsed matrix and the per-message RTA entries.
  EXPECT_NE(health.find("\"matrix_cache\":{\"capacity\":64,\"size\":1,\"hits\":1,\"misses\":1}"),
            std::string::npos)
      << health;
  EXPECT_GT(core.rta_cache().stats().hits, 0);
}

TEST(ServeCoreTest, ShedsInadmissibleKindsAndAccountsThem) {
  ServeConfig cfg;
  cfg.captain.degrade_after = 1;
  ServeCore core{cfg};
  // Force kEssential: two saturated samples, one mode step each.
  core.captain().observe(PressureState::kSaturated);
  core.captain().observe(PressureState::kSaturated);
  ASSERT_EQ(core.captain().mode(), ServeMode::kEssential);

  ServeRequest opt;
  opt.id = "o1";
  opt.kind = RequestKind::kOptimize;
  opt.matrix_csv = small_matrix_csv();
  const ServeResponse shed_opt = core.handle(opt);
  EXPECT_EQ(shed_opt.status, ResponseStatus::kShed);
  EXPECT_EQ(shed_opt.exit_code, 2);

  ServeRequest exp;
  exp.id = "e1";
  exp.kind = RequestKind::kExplain;
  exp.matrix_csv = small_matrix_csv();
  exp.message = "whatever";
  EXPECT_EQ(core.handle(exp).status, ResponseStatus::kShed);

  // The essential kinds still get answered.
  const ServeResponse still_live = core.handle(analyze_request(small_matrix_csv(), "a9"));
  EXPECT_NE(still_live.status, ResponseStatus::kShed);

  EXPECT_EQ(core.shed_count(), 2);
  EXPECT_EQ(core.captain().shed_optimize(), 1);
  EXPECT_EQ(core.captain().shed_explain(), 1);
  EXPECT_EQ(core.handled(), 3);
  const std::string health = core.health_json();
  EXPECT_NE(health.find("\"shed_optimize\":1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"shed_explain\":1"), std::string::npos) << health;
}

TEST(ServeCoreTest, SubmitTakeBatchRoundTripsThroughTheRing) {
  ServeConfig cfg;
  cfg.ring.capacity = 2;
  cfg.ring.overflow = OverflowPolicy::kReject;
  ServeCore core{cfg};
  EXPECT_EQ(core.submit(analyze_request("csv", "q1")), PushOutcome::kAccepted);
  EXPECT_EQ(core.submit(analyze_request("csv", "q2")), PushOutcome::kAccepted);
  EXPECT_EQ(core.submit(analyze_request("csv", "q3")), PushOutcome::kRejected);
  const std::vector<QueuedRequest> batch = core.take_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].req.id, "q1");
  EXPECT_EQ(batch[1].req.id, "q2");
  // submit() stamped the enqueue time and a flow id; take_batch() stamped
  // the dequeue time, never before the enqueue.
  for (const QueuedRequest& q : batch) {
    EXPECT_GT(q.enqueue_ns, 0);
    EXPECT_GE(q.dequeue_ns, q.enqueue_ns);
    EXPECT_GT(q.flow, 0u);
  }
  EXPECT_NE(batch[0].flow, batch[1].flow);
}

}  // namespace
}  // namespace symcan::serve

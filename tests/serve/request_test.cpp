#include "symcan/serve/request.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>

namespace symcan::serve {
namespace {

std::optional<ServeRequest> parse(const std::string& line,
                                  DiagnosticPolicy policy = DiagnosticPolicy::kLenient,
                                  std::size_t line_no = 1, Diagnostics* out_diags = nullptr) {
  Diagnostics diags{policy, "serve request"};
  auto req = request_from_jsonl(line, line_no, diags);
  if (out_diags) *out_diags = diags;
  return req;
}

/// parse ∘ serialize ∘ parse must be the identity on accepted requests.
void expect_round_trip(const ServeRequest& req) {
  const std::string wire = request_to_jsonl(req);
  SCOPED_TRACE(wire);
  Diagnostics diags;
  const auto back = request_from_jsonl(wire, 1, diags);
  ASSERT_TRUE(back.has_value()) << diags.format();
  EXPECT_TRUE(diags.ok()) << diags.format();
  EXPECT_EQ(*back, req);
  // Canonical form is a fixed point of serialization.
  EXPECT_EQ(request_to_jsonl(*back), wire);
}

TEST(ServeRequestTest, MinimalAnalyzeParses) {
  const auto req = parse(R"({"id":"r1","kind":"analyze","matrix_csv":"csv-bytes"})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->kind, RequestKind::kAnalyze);
  EXPECT_EQ(req->matrix_csv, "csv-bytes");
  EXPECT_EQ(req->preset, pipeline::AssumptionPreset::kDefault);
  EXPECT_FALSE(req->jitter.has_value());
  EXPECT_FALSE(req->seed.has_value());
  EXPECT_EQ(req->millis, 2000);
}

TEST(ServeRequestTest, RoundTripEveryKind) {
  ServeRequest analyze;
  analyze.id = "a";
  analyze.kind = RequestKind::kAnalyze;
  analyze.matrix_csv = "bus,msg\n\"quoted\"\n";
  analyze.preset = pipeline::AssumptionPreset::kWorstCase;
  analyze.jitter = 0.1;
  analyze.override_known = true;
  expect_round_trip(analyze);

  ServeRequest explain;
  explain.id = "e";
  explain.kind = RequestKind::kExplain;
  explain.matrix_csv = "csv";
  explain.message = "EngineTorque";
  explain.json = true;
  explain.preset = pipeline::AssumptionPreset::kBestCase;
  expect_round_trip(explain);

  ServeRequest validate;
  validate.id = "v";
  validate.kind = RequestKind::kValidate;
  validate.matrix_csv = "csv";
  validate.millis = 250;
  validate.seed = 42;
  validate.errors = "sporadic";
  validate.error_gap_ms = 55;
  validate.json = true;
  expect_round_trip(validate);

  ServeRequest optimize;
  optimize.id = "o";
  optimize.kind = RequestKind::kOptimize;
  optimize.matrix_csv = "csv";
  optimize.seed = 11;
  optimize.generations = 3;
  optimize.population = 8;
  optimize.target_jitter = 0.5;
  expect_round_trip(optimize);

  ServeRequest prob;
  prob.id = "p";
  prob.kind = RequestKind::kProb;
  prob.matrix_csv = "csv";
  prob.preset = pipeline::AssumptionPreset::kWorstCase;
  prob.fault_ppm = 250'000;
  prob.stuff_ppm = 900'000;
  prob.jitter_ppm = 0;
  prob.max_rungs = 32;
  expect_round_trip(prob);

  ServeRequest health;
  health.id = "h";
  health.kind = RequestKind::kHealth;
  expect_round_trip(health);

  ServeRequest telemetry;
  telemetry.id = "t";
  telemetry.kind = RequestKind::kTelemetry;
  expect_round_trip(telemetry);

  ServeRequest telemetry_dump;
  telemetry_dump.id = "td";
  telemetry_dump.kind = RequestKind::kTelemetry;
  telemetry_dump.dump = true;
  expect_round_trip(telemetry_dump);
}

TEST(ServeRequestTest, TelemetryKindRules) {
  // Telemetry carries no matrix, like health.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"telemetry","matrix_csv":"c"})"));
  const auto req = parse(R"({"id":"x","kind":"telemetry","dump":true})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, RequestKind::kTelemetry);
  EXPECT_TRUE(req->dump);
  // dump belongs to telemetry only.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"health","dump":true})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","dump":true})"));
  // dump:false is the default and stays off the wire.
  ServeRequest plain;
  plain.id = "x";
  plain.kind = RequestKind::kTelemetry;
  EXPECT_EQ(request_to_jsonl(plain), R"({"id":"x","kind":"telemetry"})");
}

TEST(ServeRequestTest, ProbKindRules) {
  // Minimal prob request: ppm knobs default to the degenerate certain
  // values that reproduce the deterministic analysis.
  const auto req = parse(R"({"id":"p","kind":"prob","matrix_csv":"c"})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->kind, RequestKind::kProb);
  EXPECT_EQ(req->fault_ppm, 1'000'000);
  EXPECT_EQ(req->stuff_ppm, 1'000'000);
  EXPECT_EQ(req->jitter_ppm, 1'000'000);
  EXPECT_EQ(req->max_rungs, 96);
  // Default knobs stay off the wire.
  ServeRequest minimal;
  minimal.id = "p";
  minimal.kind = RequestKind::kProb;
  minimal.matrix_csv = "c";
  EXPECT_EQ(request_to_jsonl(minimal), R"({"id":"p","kind":"prob","matrix_csv":"c"})");
  // The ppm knobs belong to prob only.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","fault_ppm":5})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","stuff_ppm":5})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"optimize","matrix_csv":"c","max_rungs":8})"));
  // Range validation: ppm in [0, 1000000], max_rungs in [1, 4096].
  EXPECT_FALSE(parse(R"({"id":"x","kind":"prob","matrix_csv":"c","fault_ppm":1000001})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"prob","matrix_csv":"c","jitter_ppm":-1})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"prob","matrix_csv":"c","max_rungs":0})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"prob","matrix_csv":"c","max_rungs":4097})"));
  // Like every matrix-carrying kind, prob requires one and takes a preset.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"prob"})"));
  EXPECT_TRUE(parse(R"({"id":"x","kind":"prob","matrix_csv":"c","preset":"worst-case"})"));
}

TEST(ServeRequestTest, DefaultsAreOmittedFromTheWire) {
  ServeRequest req;
  req.id = "d";
  req.kind = RequestKind::kValidate;
  req.matrix_csv = "csv";
  const std::string wire = request_to_jsonl(req);
  EXPECT_EQ(wire, R"({"id":"d","kind":"validate","matrix_csv":"csv"})");
  expect_round_trip(req);
}

TEST(ServeRequestTest, MissingIdOrKindIsAnError) {
  Diagnostics diags;
  EXPECT_FALSE(parse(R"({"kind":"health"})", DiagnosticPolicy::kLenient, 1, &diags));
  EXPECT_NE(diags.format().find("missing key \"id\""), std::string::npos);
  EXPECT_FALSE(parse(R"({"id":"x"})", DiagnosticPolicy::kLenient, 1, &diags));
  EXPECT_NE(diags.format().find("missing key \"kind\""), std::string::npos);
}

TEST(ServeRequestTest, DuplicateKeyIsAnError) {
  Diagnostics diags;
  EXPECT_FALSE(parse(R"({"id":"x","id":"y","kind":"health"})", DiagnosticPolicy::kLenient, 1,
                     &diags));
  EXPECT_NE(diags.format().find("duplicate key \"id\""), std::string::npos);
}

TEST(ServeRequestTest, KindRulesRejectForeignKeys) {
  // millis belongs to validate only.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","millis":100})"));
  // preset is refused for validate (a best-case "violation" is meaningless).
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","preset":"best-case"})"));
  // generations belongs to optimize only.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","generations":5})"));
  // message belongs to explain only, and is required there.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","message":"m"})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"explain","matrix_csv":"c"})"));
  // health carries no matrix.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"health","matrix_csv":"c"})"));
  // Everything else needs one.
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze"})"));
}

TEST(ServeRequestTest, ValueValidation) {
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","jitter":-0.5})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","millis":0})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","seed":-1})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","errors":"cosmic"})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"validate","matrix_csv":"c","error_gap_ms":0})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"optimize","matrix_csv":"c","generations":2000000})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"optimize","matrix_csv":"c","population":0})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"bogus","matrix_csv":"c"})"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"analyze","matrix_csv":"c","preset":"pessimal"})"));
}

TEST(ServeRequestTest, MalformedJsonIsAnError) {
  EXPECT_FALSE(parse("not json"));
  EXPECT_FALSE(parse(R"({"id":"x")"));
  EXPECT_FALSE(parse(R"({"id":"x","kind":"health"} trailing)"));
  EXPECT_FALSE(parse(R"({"id":"x" "kind":"health"})"));
  EXPECT_FALSE(parse(""));
}

TEST(ServeRequestTest, DiagnosticsCarryTheStreamLineNumber) {
  Diagnostics diags;
  EXPECT_FALSE(parse(R"({"id":"x"})", DiagnosticPolicy::kLenient, 17, &diags));
  ASSERT_FALSE(diags.entries().empty());
  EXPECT_EQ(diags.entries().front().line, 17u);
}

TEST(ServeRequestTest, UnknownKeyWarnsLenientFailsStrict) {
  Diagnostics lenient;
  const auto req = parse(R"({"id":"x","kind":"health","future_knob":7})",
                         DiagnosticPolicy::kLenient, 1, &lenient);
  ASSERT_TRUE(req.has_value());
  EXPECT_TRUE(lenient.ok());
  EXPECT_EQ(lenient.warning_count(), 1u);

  // Strict fails on a superset of lenient: the warning escalates.
  Diagnostics strict;
  EXPECT_FALSE(parse(R"({"id":"x","kind":"health","future_knob":7})", DiagnosticPolicy::kStrict,
                     1, &strict));
  EXPECT_FALSE(strict.ok());
}

TEST(ServeRequestTest, EscapedStringsSurvive) {
  ServeRequest req;
  req.id = "tab\tnewline\nquote\"backslash\\";
  req.kind = RequestKind::kExplain;
  req.matrix_csv = "line1\r\nline2";
  req.message = "naïve ünïcode";
  expect_round_trip(req);
}

TEST(ServeRequestTest, ResponseSerializationShapes) {
  ServeResponse ok;
  ok.id = "r1";
  ok.kind = RequestKind::kAnalyze;
  ok.status = ResponseStatus::kOk;
  ok.output = "bus B: fine\n";
  EXPECT_EQ(response_to_jsonl(ok),
            R"({"id":"r1","kind":"analyze","status":"ok","exit_code":0,"output":"bus B: fine\n"})");

  Diagnostics diags{DiagnosticPolicy::kLenient, "serve request"};
  diags.error(3, "missing key \"kind\"");
  const ServeResponse bad = invalid_response("r2", diags);
  EXPECT_EQ(bad.exit_code, 2);
  const std::string wire = response_to_jsonl(bad);
  EXPECT_NE(wire.find(R"("status":"invalid")"), std::string::npos);
  EXPECT_NE(wire.find(R"("line":3)"), std::string::npos);
  EXPECT_NE(wire.find(R"("severity":"error")"), std::string::npos);

  ServeResponse health;
  health.id = "h";
  health.kind = RequestKind::kHealth;
  health.health_json = R"({"mode":"full"})";
  EXPECT_NE(response_to_jsonl(health).find(R"("health":{"mode":"full"})"), std::string::npos);

  // A telemetry payload rides the same field under its own wire key.
  ServeResponse telemetry;
  telemetry.id = "t";
  telemetry.kind = RequestKind::kTelemetry;
  telemetry.health_json = R"({"uptime_ms":1})";
  EXPECT_NE(response_to_jsonl(telemetry).find(R"("telemetry":{"uptime_ms":1})"),
            std::string::npos);
}

}  // namespace
}  // namespace symcan::serve

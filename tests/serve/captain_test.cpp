#include "symcan/serve/captain.hpp"

#include <gtest/gtest.h>

namespace symcan::serve {
namespace {

CaptainConfig quick() {
  CaptainConfig cfg;
  cfg.degrade_after = 3;
  cfg.recover_after = 8;
  return cfg;
}

void observe_n(Captain& c, PressureState p, int n) {
  for (int i = 0; i < n; ++i) c.observe(p);
}

TEST(CaptainTest, RejectsNonPositiveThresholds) {
  CaptainConfig bad;
  bad.degrade_after = 0;
  EXPECT_THROW(Captain{bad}, std::invalid_argument);
  bad = {};
  bad.recover_after = -1;
  EXPECT_THROW(Captain{bad}, std::invalid_argument);
}

TEST(CaptainTest, FullModeAdmitsEverything) {
  Captain c{quick()};
  EXPECT_EQ(c.mode(), ServeMode::kFull);
  for (const RequestKind k : {RequestKind::kAnalyze, RequestKind::kExplain,
                              RequestKind::kValidate, RequestKind::kOptimize,
                              RequestKind::kHealth})
    EXPECT_TRUE(c.admits(k)) << to_string(k);
}

TEST(CaptainTest, ShedsOptimizeFirstThenExplain) {
  Captain c{quick()};
  observe_n(c, PressureState::kSaturated, 3);
  EXPECT_EQ(c.mode(), ServeMode::kNoOptimize);
  EXPECT_FALSE(c.admits(RequestKind::kOptimize));
  EXPECT_TRUE(c.admits(RequestKind::kExplain));
  EXPECT_TRUE(c.admits(RequestKind::kAnalyze));
  EXPECT_TRUE(c.admits(RequestKind::kValidate));
  EXPECT_TRUE(c.admits(RequestKind::kHealth));

  observe_n(c, PressureState::kSaturated, 3);
  EXPECT_EQ(c.mode(), ServeMode::kEssential);
  EXPECT_FALSE(c.admits(RequestKind::kOptimize));
  EXPECT_FALSE(c.admits(RequestKind::kExplain));
  // The always-needed questions stay answerable.
  EXPECT_TRUE(c.admits(RequestKind::kAnalyze));
  EXPECT_TRUE(c.admits(RequestKind::kValidate));
  EXPECT_TRUE(c.admits(RequestKind::kHealth));

  // Essential is the floor.
  observe_n(c, PressureState::kSaturated, 10);
  EXPECT_EQ(c.mode(), ServeMode::kEssential);
  EXPECT_EQ(c.mode_changes(), 2);
}

TEST(CaptainTest, DegradeRequiresConsecutiveSaturatedSamples) {
  Captain c{quick()};
  observe_n(c, PressureState::kSaturated, 2);
  c.observe(PressureState::kOk);  // Streak broken.
  observe_n(c, PressureState::kSaturated, 2);
  EXPECT_EQ(c.mode(), ServeMode::kFull);
  c.observe(PressureState::kSaturated);  // Third consecutive.
  EXPECT_EQ(c.mode(), ServeMode::kNoOptimize);
}

TEST(CaptainTest, RecoversOneLevelPerOkStreak) {
  Captain c{quick()};
  observe_n(c, PressureState::kSaturated, 6);
  ASSERT_EQ(c.mode(), ServeMode::kEssential);

  observe_n(c, PressureState::kOk, 7);
  EXPECT_EQ(c.mode(), ServeMode::kEssential);  // One short of recover_after.
  c.observe(PressureState::kOk);
  EXPECT_EQ(c.mode(), ServeMode::kNoOptimize);
  observe_n(c, PressureState::kOk, 8);
  EXPECT_EQ(c.mode(), ServeMode::kFull);
  EXPECT_EQ(c.mode_changes(), 4);

  // Full is the ceiling.
  observe_n(c, PressureState::kOk, 20);
  EXPECT_EQ(c.mode(), ServeMode::kFull);
  EXPECT_EQ(c.mode_changes(), 4);
}

TEST(CaptainTest, ElevatedHoldsModeAndResetsBothStreaks) {
  Captain c{quick()};
  observe_n(c, PressureState::kSaturated, 2);
  c.observe(PressureState::kElevated);  // Saturated streak gone.
  observe_n(c, PressureState::kSaturated, 2);
  EXPECT_EQ(c.mode(), ServeMode::kFull);

  observe_n(c, PressureState::kSaturated, 1);
  ASSERT_EQ(c.mode(), ServeMode::kNoOptimize);
  observe_n(c, PressureState::kOk, 7);
  c.observe(PressureState::kElevated);  // Ok streak gone.
  observe_n(c, PressureState::kOk, 7);
  EXPECT_EQ(c.mode(), ServeMode::kNoOptimize);  // Still one short each time.
  c.observe(PressureState::kOk);
  EXPECT_EQ(c.mode(), ServeMode::kFull);
}

TEST(CaptainTest, RecordShedCountsPerKind) {
  Captain c{quick()};
  c.record_shed(RequestKind::kOptimize);
  c.record_shed(RequestKind::kOptimize);
  c.record_shed(RequestKind::kExplain);
  EXPECT_EQ(c.shed_optimize(), 2);
  EXPECT_EQ(c.shed_explain(), 1);
}

TEST(CaptainTest, ModeSpellings) {
  EXPECT_STREQ(to_string(ServeMode::kFull), "full");
  EXPECT_STREQ(to_string(ServeMode::kNoOptimize), "no-optimize");
  EXPECT_STREQ(to_string(ServeMode::kEssential), "essential");
}

}  // namespace
}  // namespace symcan::serve

#include "symcan/serve/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "symcan/can/kmatrix_io.hpp"
#include "symcan/serve/core.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan::serve {
namespace {

std::string small_matrix_csv(std::uint64_t seed = 42) {
  PowertrainConfig cfg;
  cfg.seed = seed;
  cfg.message_count = 12;
  return kmatrix_to_csv(generate_powertrain(cfg));
}

ServeRequest analyze_request(const std::string& csv, const std::string& id) {
  ServeRequest req;
  req.id = id;
  req.kind = RequestKind::kAnalyze;
  req.matrix_csv = csv;
  return req;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(RequestTelemetryTest, SetIdTruncatesAndTerminates) {
  RequestTelemetry t;
  t.set_id("short");
  EXPECT_STREQ(t.id, "short");
  t.set_id(std::string(100, 'x'));
  EXPECT_EQ(std::string(t.id).size(), sizeof t.id - 1);
  t.set_id("");
  EXPECT_STREQ(t.id, "");
}

TEST(RequestTelemetryTest, JsonlCarriesTheDecomposition) {
  RequestTelemetry t;
  t.set_id("r1");
  t.kind = RequestKind::kAnalyze;
  t.outcome = ResponseStatus::kOk;
  t.enqueue_ns = 100;
  t.dequeue_ns = 150;
  t.start_ns = 200;
  t.finish_ns = 450;
  t.batch_id = 7;
  t.flow = 9;
  t.matrix_cache = 1;
  t.response_bytes = 33;
  const std::string line = telemetry_to_jsonl(t);
  for (const char* frag :
       {"\"id\":\"r1\"", "\"kind\":\"analyze\"", "\"outcome\":\"ok\"",
        "\"enqueue_ns\":100", "\"dequeue_ns\":150", "\"start_ns\":200",
        "\"finish_ns\":450", "\"queue_wait_ns\":100", "\"service_ns\":250",
        "\"batch_id\":7", "\"flow\":9", "\"matrix_cache\":1",
        "\"response_bytes\":33"})
    EXPECT_NE(line.find(frag), std::string::npos) << frag << " in " << line;
}

TEST(FlightRecorderTest, RejectsZeroCapacity) {
  EXPECT_THROW(FlightRecorder{0}, std::invalid_argument);
}

TEST(FlightRecorderTest, KeepsTheLastNOldestFirst) {
  FlightRecorder fr{3};
  for (int i = 0; i < 5; ++i) {
    RequestTelemetry t;
    t.set_id("r" + std::to_string(i));
    fr.record(t);
  }
  EXPECT_EQ(fr.recorded(), 5);
  const std::vector<RequestTelemetry> snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_STREQ(snap[0].id, "r2");
  EXPECT_STREQ(snap[1].id, "r3");
  EXPECT_STREQ(snap[2].id, "r4");
}

TEST(FlightRecorderTest, DumpJsonlHasOneLinePerRetainedRecord) {
  FlightRecorder fr{8};
  for (int i = 0; i < 4; ++i) {
    RequestTelemetry t;
    t.set_id("d" + std::to_string(i));
    fr.record(t);
  }
  const std::string dump = fr.dump_jsonl();
  std::istringstream in(dump);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"id\":\"d" + std::to_string(lines) + "\""), std::string::npos)
        << line;
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

// The ISSUE's accounting criterion: every served request carries a
// complete record whose queue-wait + service time equals enqueue->finish
// exactly, in integer nanoseconds, through the REAL ring path.
TEST(ServeTelemetryTest, RingPathRecordsAnExactDecomposition) {
  ServeConfig core_cfg;
  core_cfg.jobs = 1;  // serialize workers: the memo hit/miss split is exact
  ServeCore core{core_cfg};
  const std::string csv = small_matrix_csv();
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(core.submit(analyze_request(csv, "q" + std::to_string(i))),
              PushOutcome::kAccepted);
  const std::vector<QueuedRequest> batch = core.take_batch();
  ASSERT_EQ(batch.size(), 4u);
  const std::vector<ServeResponse> resps = core.handle_batch(batch);
  ASSERT_EQ(resps.size(), 4u);

  const std::vector<RequestTelemetry> records = core.flight_recorder().snapshot();
  ASSERT_EQ(records.size(), 4u);
  std::set<std::uint64_t> flows;
  for (const RequestTelemetry& t : records) {
    SCOPED_TRACE(t.id);
    EXPECT_EQ(t.queue_wait_ns() + t.service_ns(), t.finish_ns - t.enqueue_ns);
    EXPECT_GT(t.enqueue_ns, 0);
    EXPECT_GE(t.dequeue_ns, t.enqueue_ns);
    EXPECT_GE(t.start_ns, t.dequeue_ns);
    EXPECT_GE(t.finish_ns, t.start_ns);
    EXPECT_EQ(t.batch_id, 1u);
    EXPECT_EQ(t.outcome, ResponseStatus::kOk);
    EXPECT_GT(t.response_bytes, 0u);
    flows.insert(t.flow);
  }
  // Distinct flow ids: each request is its own trace tree.
  EXPECT_EQ(flows.size(), 4u);
  // Same CSV four times: first parse misses the memo, the rest hit.
  int hits = 0, misses = 0;
  for (const RequestTelemetry& t : records) {
    if (t.matrix_cache == 1) ++hits;
    if (t.matrix_cache == 0) ++misses;
  }
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(hits, 3);
}

TEST(ServeTelemetryTest, DirectHandleHasZeroQueueWait) {
  ServeCore core;
  core.handle(analyze_request(small_matrix_csv(), "h1"));
  const std::vector<RequestTelemetry> records = core.flight_recorder().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].queue_wait_ns(), 0);
  EXPECT_EQ(records[0].enqueue_ns, records[0].dequeue_ns);
  EXPECT_EQ(records[0].service_ns(),
            records[0].finish_ns - records[0].enqueue_ns);
}

TEST(ServeTelemetryTest, RejectedAtTheRingStillGetsARecord) {
  ServeConfig cfg;
  cfg.ring.capacity = 1;
  cfg.ring.overflow = OverflowPolicy::kReject;
  ServeCore core{cfg};
  ASSERT_EQ(core.submit(analyze_request("csv", "ok1")), PushOutcome::kAccepted);
  ASSERT_EQ(core.submit(analyze_request("csv", "no1")), PushOutcome::kRejected);
  const std::vector<RequestTelemetry> records = core.flight_recorder().snapshot();
  ASSERT_EQ(records.size(), 1u);  // only the refusal is finished so far
  EXPECT_STREQ(records[0].id, "no1");
  EXPECT_EQ(records[0].outcome, ResponseStatus::kRejected);
  // Refused before any worker: start == finish, identity still holds.
  EXPECT_EQ(records[0].start_ns, records[0].finish_ns);
  EXPECT_EQ(records[0].queue_wait_ns() + records[0].service_ns(),
            records[0].finish_ns - records[0].enqueue_ns);
}

TEST(ServeTelemetryTest, DropOldestVictimIsRecordedAsRejected) {
  ServeConfig cfg;
  cfg.ring.capacity = 1;
  cfg.ring.overflow = OverflowPolicy::kDropOldest;
  ServeCore core{cfg};
  ASSERT_EQ(core.submit(analyze_request("csv", "old")), PushOutcome::kAccepted);
  std::optional<QueuedRequest> victim;
  ASSERT_EQ(core.submit(analyze_request("csv", "new"), &victim),
            PushOutcome::kReplacedOldest);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->req.id, "old");
  const std::vector<RequestTelemetry> records = core.flight_recorder().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].id, "old");
  EXPECT_EQ(records[0].outcome, ResponseStatus::kRejected);
}

TEST(ServeTelemetryTest, FirstShedTriggersAFlightDump) {
  const TempPath dump{"symcan_flight_shed.jsonl"};
  ServeConfig cfg;
  cfg.captain.degrade_after = 1;
  cfg.telemetry.flight_path = dump.path;
  ServeCore core{cfg};
  core.captain().observe(PressureState::kSaturated);
  core.captain().observe(PressureState::kSaturated);
  ASSERT_EQ(core.captain().mode(), ServeMode::kEssential);

  ServeRequest opt;
  opt.id = "o1";
  opt.kind = RequestKind::kOptimize;
  opt.matrix_csv = small_matrix_csv();
  ASSERT_EQ(core.handle(opt).status, ResponseStatus::kShed);

  const std::string contents = read_file(dump.path);
  EXPECT_NE(contents.find("\"reason\":\"first-shed\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"id\":\"o1\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"outcome\":\"shed\""), std::string::npos) << contents;
}

TEST(ServeTelemetryTest, TelemetryRequestWithDumpFlushesTheRecorder) {
  const TempPath dump{"symcan_flight_req.jsonl"};
  ServeConfig cfg;
  cfg.telemetry.flight_path = dump.path;
  ServeCore core{cfg};
  core.handle(analyze_request(small_matrix_csv(), "a1"));

  ServeRequest req;
  req.id = "t1";
  req.kind = RequestKind::kTelemetry;
  req.dump = true;
  const ServeResponse resp = core.handle(req);
  EXPECT_EQ(resp.status, ResponseStatus::kOk);

  const std::string contents = read_file(dump.path);
  EXPECT_NE(contents.find("\"reason\":\"request\""), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"id\":\"a1\""), std::string::npos) << contents;
}

TEST(ServeTelemetryTest, DumpWithoutAPathReportsFalse) {
  ServeCore core;
  core.handle(analyze_request(small_matrix_csv(), "a1"));
  EXPECT_FALSE(core.dump_flight("test"));
  // But a configured path succeeds and counts.
  const TempPath dump{"symcan_flight_direct.jsonl"};
  ServeConfig cfg;
  cfg.telemetry.flight_path = dump.path;
  ServeCore core2{cfg};
  core2.handle(analyze_request(small_matrix_csv(), "a2"));
  EXPECT_TRUE(core2.dump_flight("test"));
  EXPECT_NE(core2.telemetry_json().find("\"dumps\":1"), std::string::npos);
}

TEST(ServeTelemetryTest, SloBurnAppearsAfterSlowRequests) {
  ServeConfig cfg;
  cfg.telemetry.slo.analyze_ms = 0;  // disabled kinds emit no entry
  ServeCore core{cfg};
  core.handle(analyze_request(small_matrix_csv(), "a1"));
  const std::string json = core.telemetry_json();
  EXPECT_EQ(json.find("\"analyze\":{\"target_ms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"validate\":{\"target_ms\":2000"), std::string::npos) << json;
}

}  // namespace
}  // namespace symcan::serve

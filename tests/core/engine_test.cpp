#include "symcan/core/engine.hpp"

#include <gtest/gtest.h>

namespace symcan {
namespace {

Task mk_task(const char* name, int prio, Duration bcet, Duration wcet, Duration period) {
  Task t;
  t.name = name;
  t.priority = prio;
  t.bcet = bcet;
  t.wcet = wcet;
  t.activation = EventModel::periodic(period);
  return t;
}

/// sender task on ECU "S" -> message on "bus" -> receiver task on ECU "R".
System chain_system() {
  System sys;
  KMatrix km{"bus", BitTiming{500'000}};
  EcuNode s;
  s.name = "S";
  km.add_node(s);
  EcuNode r;
  r.name = "R";
  km.add_node(r);
  CanMessage m;
  m.name = "data";
  m.id = 0x100;
  m.payload_bytes = 8;
  m.period = Duration::ms(10);
  m.sender = "S";
  m.receivers = {"R"};
  km.add_message(m);
  // Background traffic to make the bus non-trivial.
  CanMessage bg;
  bg.name = "bg";
  bg.id = 0x80;
  bg.payload_bytes = 8;
  bg.period = Duration::ms(5);
  bg.sender = "R";
  bg.receivers = {"S"};
  km.add_message(bg);
  sys.add_bus(std::move(km));

  sys.add_ecu("S", {mk_task("producer", 1, Duration::ms(1), Duration::ms(2), Duration::ms(10)),
                    mk_task("housekeeping", 5, Duration::us(500), Duration::ms(1),
                            Duration::ms(5))});
  sys.add_ecu("R", {mk_task("consumer", 1, Duration::us(300), Duration::ms(1), Duration::ms(10))});

  Path p;
  p.name = "control";
  p.source = EventModel::periodic(Duration::ms(10));
  p.elements = {{PathElement::Kind::kTask, "S", "producer"},
                {PathElement::Kind::kMessage, "bus", "data"},
                {PathElement::Kind::kTask, "R", "consumer"}};
  p.deadline = Duration::ms(10);
  sys.add_path(p);
  return sys;
}

EngineConfig plain_engine_config() {
  EngineConfig cfg;
  cfg.bus.worst_case_stuffing = true;
  cfg.bus.deadline_override = DeadlinePolicy::kPeriod;
  return cfg;
}

TEST(Engine, ConvergesOnFeedForwardChain) {
  Engine engine{chain_system(), plain_engine_config()};
  const SystemResult res = engine.analyze();
  EXPECT_TRUE(res.converged);
  // Feed-forward chains converge in few iterations (one per propagation
  // depth plus the final no-change pass).
  EXPECT_LE(res.iterations, 4);
}

TEST(Engine, PropagatesResponseJitterDownstream) {
  Engine engine{chain_system(), plain_engine_config()};
  const SystemResult res = engine.analyze();
  const EcuResult& s = res.ecus.at("S");
  const BusResult& bus = res.buses.at("bus");

  // The producer has wcrt > bcrt, so the message must see nonzero jitter:
  // its response time on the bus must exceed the zero-jitter value.
  const TaskResult& producer = s.tasks[0];
  EXPECT_GT(producer.response_jitter(), Duration::zero());

  // Find "data": its activation jitter equals the producer's response
  // jitter, which shows up in the busy-window interference of lower
  // priority messages — here we check the path latency accounting.
  const PathResult& path = res.paths.at(0);
  Duration expect_max = producer.wcrt;
  for (const auto& m : bus.messages)
    if (m.name == "data") expect_max += m.wcrt;
  expect_max += res.ecus.at("R").tasks[0].wcrt;
  EXPECT_EQ(path.latency_max, expect_max);
  EXPECT_GT(path.latency_max, path.latency_min);
}

TEST(Engine, PathDeadlineVerdict) {
  const SystemResult res = Engine{chain_system(), plain_engine_config()}.analyze();
  const PathResult& path = res.paths.at(0);
  EXPECT_EQ(path.deadline, Duration::ms(10));
  EXPECT_EQ(path.met, path.latency_max <= path.deadline);
}

TEST(Engine, AllSchedulableOnUnderloadedSystem) {
  const SystemResult res = Engine{chain_system(), plain_engine_config()}.analyze();
  EXPECT_TRUE(res.all_schedulable());
}

TEST(Engine, SourceModelOverridesMatrixJitter) {
  System sys = chain_system();
  // Source with jitter: the head task activation inherits it.
  System sys2;
  sys2.add_bus(sys.buses().at("bus"));
  sys2.add_ecu("S", sys.ecus().at("S"));
  sys2.add_ecu("R", sys.ecus().at("R"));
  Path p;
  p.name = "control";
  p.source = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(4));
  p.elements = {{PathElement::Kind::kTask, "S", "producer"},
                {PathElement::Kind::kMessage, "bus", "data"},
                {PathElement::Kind::kTask, "R", "consumer"}};
  sys2.add_path(p);

  const SystemResult base = Engine{sys, plain_engine_config()}.analyze();
  const SystemResult jittered = Engine{sys2, plain_engine_config()}.analyze();
  // Added source jitter can only increase the worst-case path latency.
  EXPECT_GE(jittered.paths.at(0).latency_max, base.paths.at(0).latency_max);
}

TEST(Engine, InputSystemIsNotMutated) {
  System sys = chain_system();
  const Duration before = sys.buses().at("bus").find_message("data")->jitter;
  Engine{sys, plain_engine_config()}.analyze();
  EXPECT_EQ(sys.buses().at("bus").find_message("data")->jitter, before);
}

TEST(Engine, GatewayTwoBusChain) {
  // busA -> gateway task -> busB. Checks cross-resource propagation.
  System sys;
  for (const char* bus_name : {"busA", "busB"}) {
    KMatrix km{bus_name, BitTiming{500'000}};
    EcuNode e;
    e.name = "E";
    km.add_node(e);
    EcuNode gw;
    gw.name = "GW";
    gw.is_gateway = true;
    km.add_node(gw);
    CanMessage m;
    m.name = std::string(bus_name) + "_msg";
    m.id = 0x100;
    m.payload_bytes = 8;
    m.period = Duration::ms(20);
    m.sender = std::string(bus_name) == "busA" ? "E" : "GW";
    m.receivers = {m.sender == "E" ? "GW" : "E"};
    km.add_message(m);
    sys.add_bus(std::move(km));
  }
  sys.add_ecu("GW", {mk_task("forward", 1, Duration::us(100), Duration::us(300),
                             Duration::ms(20))});
  Path p;
  p.name = "gatewayed";
  p.source = EventModel::periodic(Duration::ms(20));
  p.elements = {{PathElement::Kind::kMessage, "busA", "busA_msg"},
                {PathElement::Kind::kTask, "GW", "forward"},
                {PathElement::Kind::kMessage, "busB", "busB_msg"}};
  sys.add_path(p);

  const SystemResult res = Engine{sys, plain_engine_config()}.analyze();
  EXPECT_TRUE(res.converged);
  const PathResult& path = res.paths.at(0);
  EXPECT_GT(path.latency_max, Duration::zero());
  // Latency covers both bus hops plus the forwarding task.
  EXPECT_GE(path.latency_max, Duration::us(222) * 2);
  // The downstream message inherited jitter from upstream stages.
  bool checked = false;
  for (const auto& m : res.buses.at("busB").messages) {
    if (m.name != "busB_msg") continue;
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST(Engine, DivergentResourceReportedNotConvergedOrUnschedulable) {
  // Overloaded ECU in the path: wcrt diverges; the engine must not hang
  // and the system must not be declared schedulable.
  System sys = chain_system();
  System sys2;
  sys2.add_bus(sys.buses().at("bus"));
  std::vector<Task> tasks = sys.ecus().at("S");
  tasks[0].wcet = Duration::ms(9);
  tasks[1].wcet = Duration::ms(4);  // 9/10 + 4/5 > 1
  tasks[1].sched = SchedClass::kInterrupt;  // preempts the producer
  sys2.add_ecu("S", tasks);
  sys2.add_ecu("R", sys.ecus().at("R"));
  Path p;
  p.name = "control";
  p.source = EventModel::periodic(Duration::ms(10));
  p.elements = {{PathElement::Kind::kTask, "S", "producer"},
                {PathElement::Kind::kMessage, "bus", "data"},
                {PathElement::Kind::kTask, "R", "consumer"}};
  p.deadline = Duration::ms(10);
  sys2.add_path(p);

  EngineConfig cfg = plain_engine_config();
  cfg.ecu_horizon = Duration::ms(500);
  const SystemResult res = Engine{sys2, cfg}.analyze();
  EXPECT_FALSE(res.all_schedulable());
  EXPECT_TRUE(res.paths.at(0).latency_max.is_infinite());
  EXPECT_FALSE(res.paths.at(0).met);
}

}  // namespace
}  // namespace symcan

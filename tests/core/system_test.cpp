#include "symcan/core/system.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

KMatrix tiny_bus(const std::string& name = "bus") {
  KMatrix km{name, BitTiming{500'000}};
  EcuNode a;
  a.name = "A";
  km.add_node(a);
  CanMessage m;
  m.name = "msg";
  m.id = 0x100;
  m.period = Duration::ms(10);
  m.sender = "A";
  m.receivers = {"A"};
  km.add_message(m);
  return km;
}

Task tiny_task(const char* name = "task") {
  Task t;
  t.name = name;
  t.priority = 1;
  t.wcet = Duration::ms(1);
  t.bcet = Duration::us(500);
  t.activation = EventModel::periodic(Duration::ms(10));
  return t;
}

TEST(System, AddAndQueryResources) {
  System sys;
  sys.add_bus(tiny_bus());
  sys.add_ecu("A", {tiny_task()});
  EXPECT_EQ(sys.buses().size(), 1u);
  EXPECT_EQ(sys.ecus().size(), 1u);
  EXPECT_NO_THROW(sys.validate());
}

TEST(System, DuplicateBusRejected) {
  System sys;
  sys.add_bus(tiny_bus());
  EXPECT_THROW(sys.add_bus(tiny_bus()), std::invalid_argument);
}

TEST(System, DuplicateEcuRejected) {
  System sys;
  sys.add_ecu("A", {});
  EXPECT_THROW(sys.add_ecu("A", {}), std::invalid_argument);
}

TEST(System, EmptyPathRejected) {
  System sys;
  Path p;
  p.name = "p";
  EXPECT_THROW(sys.add_path(p), std::invalid_argument);
  p.name.clear();
  p.elements.push_back({PathElement::Kind::kTask, "A", "task"});
  EXPECT_THROW(sys.add_path(p), std::invalid_argument);
}

TEST(SystemValidate, CatchesUnknownBusReference) {
  System sys;
  sys.add_bus(tiny_bus());
  Path p;
  p.name = "p";
  p.elements.push_back({PathElement::Kind::kMessage, "nope", "msg"});
  sys.add_path(p);
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(SystemValidate, CatchesUnknownMessage) {
  System sys;
  sys.add_bus(tiny_bus());
  Path p;
  p.name = "p";
  p.elements.push_back({PathElement::Kind::kMessage, "bus", "ghost"});
  sys.add_path(p);
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(SystemValidate, CatchesUnknownEcuAndTask) {
  System sys;
  sys.add_ecu("A", {tiny_task()});
  Path p;
  p.name = "p";
  p.elements.push_back({PathElement::Kind::kTask, "B", "task"});
  sys.add_path(p);
  EXPECT_THROW(sys.validate(), std::invalid_argument);

  System sys2;
  sys2.add_ecu("A", {tiny_task()});
  Path p2;
  p2.name = "p2";
  p2.elements.push_back({PathElement::Kind::kTask, "A", "ghost"});
  sys2.add_path(p2);
  EXPECT_THROW(sys2.validate(), std::invalid_argument);
}

TEST(SystemValidate, AcceptsResolvablePath) {
  System sys;
  sys.add_bus(tiny_bus());
  sys.add_ecu("A", {tiny_task()});
  Path p;
  p.name = "p";
  p.elements.push_back({PathElement::Kind::kTask, "A", "task"});
  p.elements.push_back({PathElement::Kind::kMessage, "bus", "msg"});
  sys.add_path(p);
  EXPECT_NO_THROW(sys.validate());
}

}  // namespace
}  // namespace symcan

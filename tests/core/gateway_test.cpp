#include "symcan/core/gateway.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symcan {
namespace {

GatewayConfig base_config(GatewayStrategy s) {
  GatewayConfig cfg;
  cfg.strategy = s;
  cfg.forward_bcet = Duration::us(50);
  cfg.forward_wcet = Duration::us(200);
  return cfg;
}

const EventModel periodic_in = EventModel::periodic_jitter(Duration::ms(10), Duration::ms(1));
const EventModel bursty_in =
    EventModel::periodic_burst(Duration::ms(5), Duration::ms(20), Duration::us(300));

TEST(GatewayImmediate, AddsOnlyHandlingLatency) {
  const ForwardedStream f = forward_stream(periodic_in, base_config(GatewayStrategy::kImmediate));
  EXPECT_EQ(f.min_delay, Duration::us(50));
  EXPECT_EQ(f.max_delay, Duration::us(200));
  EXPECT_EQ(f.output.period(), periodic_in.period());
  EXPECT_EQ(f.output.jitter(), periodic_in.jitter() + Duration::us(150));
  ASSERT_TRUE(f.queue_depth);
  EXPECT_EQ(*f.queue_depth, 1);
}

TEST(GatewayFifo, QueueDelayScalesWithSiblings) {
  GatewayConfig cfg = base_config(GatewayStrategy::kFifo);
  cfg.fifo_service = EventModel::periodic(Duration::ms(1));
  const ForwardedStream alone = forward_stream(periodic_in, cfg);
  const ForwardedStream crowded = forward_stream(
      periodic_in, cfg,
      {EventModel::periodic(Duration::ms(10)), EventModel::periodic(Duration::ms(10)),
       EventModel::periodic(Duration::ms(10))});
  ASSERT_TRUE(alone.queue_depth);
  ASSERT_TRUE(crowded.queue_depth);
  EXPECT_GT(*crowded.queue_depth, *alone.queue_depth);
  EXPECT_GT(crowded.max_delay, alone.max_delay);
}

TEST(GatewayFifo, OverloadedQueueReportedUnbounded) {
  GatewayConfig cfg = base_config(GatewayStrategy::kFifo);
  cfg.fifo_service = EventModel::periodic(Duration::ms(10));
  std::vector<EventModel> siblings(3, EventModel::periodic(Duration::ms(10)));
  const ForwardedStream f = forward_stream(periodic_in, cfg, siblings);
  EXPECT_FALSE(f.queue_depth);
  EXPECT_TRUE(f.max_delay.is_infinite());
}

TEST(GatewayShaped, EnforcesMinimumDistanceDownstream) {
  GatewayConfig cfg = base_config(GatewayStrategy::kShaped);
  cfg.shaping_distance = Duration::ms(2);
  const ForwardedStream f = forward_stream(bursty_in, cfg);
  EXPECT_EQ(f.output.min_distance(), Duration::ms(2));
  EXPECT_EQ(f.output.period(), bursty_in.period());
  // A 1 ms downstream window sees one frame instead of a 4-frame burst.
  EXPECT_LE(f.output.eta_plus(Duration::ms(1)), 2);
  EXPECT_GE(bursty_in.eta_plus(Duration::ms(1)), 4);
}

TEST(GatewayShaped, SmoothingDelayBoundsTheBurstFlattening) {
  GatewayConfig cfg = base_config(GatewayStrategy::kShaped);
  cfg.shaping_distance = Duration::ms(2);
  const ForwardedStream f = forward_stream(bursty_in, cfg);
  // A burst of b frames arriving back-to-back leaves over (b-1)*d: the
  // last one waits roughly that long. Must be > 0 and finite.
  EXPECT_GT(f.max_delay, cfg.forward_wcet);
  EXPECT_FALSE(f.max_delay.is_infinite());
  // Strictly periodic input needs no smoothing at all.
  const ForwardedStream calm =
      forward_stream(EventModel::periodic(Duration::ms(10)), cfg);
  EXPECT_EQ(calm.max_delay, cfg.forward_wcet);
}

TEST(GatewayShaped, RejectsStarvingDistance) {
  GatewayConfig cfg = base_config(GatewayStrategy::kShaped);
  cfg.shaping_distance = Duration::ms(20);
  EXPECT_THROW(forward_stream(periodic_in, cfg), std::invalid_argument);
}

TEST(GatewayShaped, DownstreamInterferenceNeverWorseThanImmediate) {
  GatewayConfig shaped = base_config(GatewayStrategy::kShaped);
  shaped.shaping_distance = Duration::ms(1);
  const ForwardedStream s = forward_stream(bursty_in, shaped);
  const ForwardedStream i = forward_stream(bursty_in, base_config(GatewayStrategy::kImmediate));
  // For short windows (what lower-priority frames care about), shaping
  // strictly reduces the admitted event count.
  for (Duration w = Duration::us(100); w <= Duration::ms(4); w += Duration::us(331))
    EXPECT_LE(s.output.eta_plus(w), i.output.eta_plus(w)) << to_string(w);
}

TEST(GatewayConfigValidation, RejectsBadExecutionTimes) {
  GatewayConfig cfg = base_config(GatewayStrategy::kImmediate);
  cfg.forward_bcet = Duration::ms(1);
  cfg.forward_wcet = Duration::us(10);
  EXPECT_THROW(forward_stream(periodic_in, cfg), std::invalid_argument);
}

TEST(GatewayStrategyNames, ToString) {
  EXPECT_STREQ(to_string(GatewayStrategy::kImmediate), "immediate");
  EXPECT_STREQ(to_string(GatewayStrategy::kFifo), "fifo");
  EXPECT_STREQ(to_string(GatewayStrategy::kShaped), "shaped");
}

}  // namespace
}  // namespace symcan

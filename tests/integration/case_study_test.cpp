// End-to-end reproduction of the paper's Section 4 case study as a test:
// import a power-train K-Matrix, run the what-if experiments, verify the
// qualitative claims of Figures 4 and 5, and confirm the optimizer
// reaches the paper's target ("does not loose a single message at 25 %
// jitter, even in the presence of errors and bit stuffing").

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "symcan/analysis/presets.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/sensitivity/robustness.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

class CaseStudy : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { km_ = new KMatrix(generate_powertrain(PowertrainConfig::case_study())); }
  static void TearDownTestSuite() {
    delete km_;
    km_ = nullptr;
  }
  const KMatrix& km() const { return *km_; }
  static KMatrix* km_;
};

KMatrix* CaseStudy::km_ = nullptr;

TEST_F(CaseStudy, Experiment1ZeroJitterAllDeadlinesMet) {
  // "In the first experiment, we assumed zero jitters and verified that
  // all messages will meet their deadlines."
  KMatrix zero = km();
  assume_jitter_fraction(zero, 0.0, true);
  CanRtaConfig cfg;
  cfg.worst_case_stuffing = true;
  cfg.deadline_override = DeadlinePolicy::kPeriod;
  EXPECT_TRUE((CanRta{zero, cfg}.analyze().all_schedulable()));
}

TEST_F(CaseStudy, Figure5BestCaseLossStartsAbove25Percent) {
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  const JitterSweepResult res = sweep_jitter(km(), cfg);
  for (std::size_t i = 0; i < res.fractions.size(); ++i) {
    if (res.fractions[i] <= 0.25 + 1e-9) {
      EXPECT_EQ(res.results[i].miss_count(), 0u) << "at " << res.fractions[i];
    }
  }
  // "then loss is slightly increasing": some loss by the end of the sweep.
  EXPECT_GT(res.miss_fraction(res.results.size() - 1), 0.0);
  EXPECT_LT(res.miss_fraction(res.results.size() - 1), 0.15);
}

TEST_F(CaseStudy, Figure5WorstCaseLossStartsEarlyAndGrowsFast) {
  JitterSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  const JitterSweepResult res = sweep_jitter(km(), cfg);
  // "deadline violations and message loss starting at very small jitters"
  double at_15 = 0, at_60 = 0;
  for (std::size_t i = 0; i < res.fractions.size(); ++i) {
    if (std::abs(res.fractions[i] - 0.15) < 1e-9) at_15 = res.miss_fraction(i);
    if (std::abs(res.fractions[i] - 0.60) < 1e-9) at_60 = res.miss_fraction(i);
  }
  EXPECT_GT(at_15, 0.0);
  // "...and increasing rapidly" — the paper's worst case reaches ~40 %.
  EXPECT_GT(at_60, 0.30);
}

TEST_F(CaseStudy, Figure4SensitivityClassesPresent) {
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  const SensitivityReport rep = analyze_sensitivity(km(), cfg);
  EXPECT_GT(rep.count(Robustness::kRobust), 0u);
  const std::size_t sensitive = rep.count(Robustness::kSensitive) +
                                rep.count(Robustness::kVerySensitive) +
                                rep.count(Robustness::kMedium);
  EXPECT_GT(sensitive, 0u);
}

TEST_F(CaseStudy, Section43OptimizerReachesZeroLossAt25) {
  GaConfig cfg;
  cfg.rta = worst_case_assumptions();
  // Evaluate at the paper's 25 % target plus two stress points so the
  // optimized matrix also behaves beyond the target (Figure 5 keeps the
  // optimized curves below the originals across the sweep).
  cfg.eval_fractions = {0.25, 0.40, 0.60};
  cfg.population = 32;
  cfg.archive = 16;
  cfg.generations = 25;
  cfg.seeds = {current_order(km()), deadline_monotonic_order(km())};
  const GaResult res = optimize_priorities(km(), cfg);

  const KMatrix opt = apply_priority_order(km(), res.best.order);
  JitterSweepConfig sweep;
  sweep.rta = worst_case_assumptions();
  const auto orig = sweep_jitter(km(), sweep);
  const auto optd = sweep_jitter(opt, sweep);
  for (std::size_t i = 0; i < orig.results.size(); ++i) {
    // "does not loose a single message at 25 % jitter, even in the
    // presence of errors and bit stuffing."
    if (orig.fractions[i] <= 0.25 + 1e-9)
      EXPECT_EQ(optd.results[i].miss_count(), 0u) << "at " << orig.fractions[i];
    // Dominance at the primary and first stress point; at the extreme
    // 60 % tail the optimizer may trade a little (the paper's only hard
    // quantitative claim is the 25 % target), but must not regress badly.
    if (std::abs(orig.fractions[i] - 0.40) < 1e-9)
      EXPECT_LE(optd.miss_fraction(i), orig.miss_fraction(i) + 1e-9)
          << "at " << orig.fractions[i];
    if (std::abs(orig.fractions[i] - 0.60) < 1e-9)
      EXPECT_LE(optd.miss_fraction(i), orig.miss_fraction(i) + 0.15)
          << "at " << orig.fractions[i];
  }
}

TEST_F(CaseStudy, WhatIfRoundTripThroughCsv) {
  // The OEM workflow starts from an imported K-Matrix; analysis results
  // must be identical on the round-tripped matrix.
  const KMatrix back = kmatrix_from_csv(kmatrix_to_csv(km()));
  CanRtaConfig cfg = worst_case_assumptions();
  const BusResult a = CanRta{km(), cfg}.analyze();
  const BusResult b = CanRta{back, cfg}.analyze();
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i)
    EXPECT_EQ(a.messages[i].wcrt, b.messages[i].wcrt);
}

TEST_F(CaseStudy, AnalysisIsFastEnoughForWhatIfLoops) {
  // "we could do such what-if observations within minutes" — on modern
  // hardware a full-matrix analysis takes milliseconds; assert a generous
  // bound so the property is regression-tested without flakiness.
  const auto t0 = std::chrono::steady_clock::now();
  CanRta{km(), worst_case_assumptions()}.analyze();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
}

}  // namespace
}  // namespace symcan

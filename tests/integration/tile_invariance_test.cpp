// Tile-size invariance: the tiled fan-outs (jitter/error/grid sweeps,
// GA/NSGA-II fitness evaluation) shard their index space into fixed-size
// work tiles, but every result lands in its own index slot — so the
// output must be byte-identical for EVERY tile size at EVERY worker
// count. This suite pins that property across tiles {1, 7, 64} x jobs
// {1, 4} against the tile=0 (auto) serial baseline, and additionally
// pins sweep_grid's cells against independently computed full analyses
// (the grid's one-pack-per-row columnar shortcut must not show).
//
// Labelled `determinism` so CI runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "symcan/analysis/presets.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/opt/nsga2.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

const int kTiles[] = {1, 7, 64};
const int kJobs[] = {1, 4};

KMatrix case_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

void expect_same_bus_result(const BusResult& a, const BusResult& b, const std::string& where) {
  ASSERT_EQ(a.messages.size(), b.messages.size()) << where;
  EXPECT_EQ(a.utilization, b.utilization) << where;
  for (std::size_t m = 0; m < a.messages.size(); ++m) {
    const MessageResult& x = a.messages[m];
    const MessageResult& y = b.messages[m];
    EXPECT_EQ(x.name, y.name) << where;
    EXPECT_EQ(x.wcrt.count_ns(), y.wcrt.count_ns()) << where << " " << x.name;
    EXPECT_EQ(x.busy_period.count_ns(), y.busy_period.count_ns()) << where << " " << x.name;
    EXPECT_EQ(x.blocking.count_ns(), y.blocking.count_ns()) << where << " " << x.name;
    EXPECT_EQ(x.instances, y.instances) << where << " " << x.name;
    EXPECT_EQ(x.fixedpoint_iterations, y.fixedpoint_iterations) << where << " " << x.name;
    EXPECT_EQ(x.schedulable, y.schedulable) << where << " " << x.name;
    EXPECT_EQ(x.diverged, y.diverged) << where << " " << x.name;
  }
}

TEST(TileInvariance, JitterSweepByteIdenticalAcrossTilesAndJobs) {
  const KMatrix km = case_matrix();
  JitterSweepConfig base;
  base.rta = worst_case_assumptions();
  base.parallelism = 1;
  base.tile = 0;
  const JitterSweepResult ref = sweep_jitter(km, base);

  for (const int jobs : kJobs) {
    for (const int tile : kTiles) {
      JitterSweepConfig cfg = base;
      cfg.parallelism = jobs;
      cfg.tile = tile;
      const JitterSweepResult got = sweep_jitter(km, cfg);
      const std::string where = "jobs=" + std::to_string(jobs) + " tile=" + std::to_string(tile);
      ASSERT_EQ(ref.fractions, got.fractions) << where;
      ASSERT_EQ(ref.results.size(), got.results.size()) << where;
      for (std::size_t i = 0; i < ref.results.size(); ++i)
        expect_same_bus_result(ref.results[i], got.results[i],
                               where + " point " + std::to_string(i));
    }
  }
}

TEST(TileInvariance, ErrorSweepByteIdenticalAcrossTilesAndJobs) {
  const KMatrix km = case_matrix();
  ErrorSweepConfig base;
  base.rta = worst_case_assumptions();
  base.parallelism = 1;
  base.tile = 0;
  const ErrorSweepResult ref = sweep_errors(km, base);

  for (const int jobs : kJobs) {
    for (const int tile : kTiles) {
      ErrorSweepConfig cfg = base;
      cfg.parallelism = jobs;
      cfg.tile = tile;
      const ErrorSweepResult got = sweep_errors(km, cfg);
      const std::string where = "jobs=" + std::to_string(jobs) + " tile=" + std::to_string(tile);
      ASSERT_EQ(ref.min_inter_error.size(), got.min_inter_error.size()) << where;
      for (std::size_t i = 0; i < ref.results.size(); ++i) {
        EXPECT_EQ(ref.min_inter_error[i].count_ns(), got.min_inter_error[i].count_ns()) << where;
        expect_same_bus_result(ref.results[i], got.results[i],
                               where + " point " + std::to_string(i));
      }
    }
  }
}

TEST(TileInvariance, GridSweepByteIdenticalAcrossTilesAndJobs) {
  const KMatrix km = case_matrix();
  GridSweepConfig base;
  base.rta = worst_case_assumptions();
  base.step = 0.10;  // 7 rows x 7 columns keeps the TSan runtime sane
  base.error_points = 7;
  base.parallelism = 1;
  base.tile = 0;
  const GridSweepResult ref = sweep_grid(km, base);
  ASSERT_GT(ref.points(), 0u);

  for (const int jobs : kJobs) {
    for (const int tile : kTiles) {
      GridSweepConfig cfg = base;
      cfg.parallelism = jobs;
      cfg.tile = tile;
      const GridSweepResult got = sweep_grid(km, cfg);
      const std::string where = "jobs=" + std::to_string(jobs) + " tile=" + std::to_string(tile);
      ASSERT_EQ(ref.fractions, got.fractions) << where;
      ASSERT_EQ(ref.miss_fraction, got.miss_fraction) << where;
      ASSERT_EQ(ref.worst_wcrt.size(), got.worst_wcrt.size()) << where;
      for (std::size_t i = 0; i < ref.worst_wcrt.size(); ++i)
        EXPECT_EQ(ref.worst_wcrt[i].count_ns(), got.worst_wcrt[i].count_ns())
            << where << " cell " << i;
    }
  }
}

// The grid packs each jitter row once and swaps the error model per
// column without repacking; every cell must still equal a from-scratch
// full analysis of that exact (jitter, error) configuration.
TEST(TileInvariance, GridCellsMatchFullAnalyses) {
  const KMatrix km = case_matrix();
  GridSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.step = 0.15;  // 5 rows x 5 columns of reference analyses
  cfg.error_points = 5;
  cfg.parallelism = 1;
  const GridSweepResult grid = sweep_grid(km, cfg);

  for (std::size_t r = 0; r < grid.rows(); ++r) {
    KMatrix variant = km;
    assume_jitter_fraction(variant, grid.fractions[r], cfg.override_known);
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      CanRtaConfig point = cfg.rta;
      point.errors = std::make_shared<SporadicErrors>(grid.min_inter_error[c]);
      const BusResult full = CanRta{variant, point}.analyze();
      Duration worst = Duration::zero();
      for (const auto& m : full.messages) worst = max(worst, m.wcrt);
      EXPECT_EQ(grid.miss_at(r, c), full.miss_fraction()) << "cell " << r << "," << c;
      EXPECT_EQ(grid.wcrt_at(r, c).count_ns(), worst.count_ns()) << "cell " << r << "," << c;
    }
  }
}

TEST(TileInvariance, GaPopulationsByteIdenticalAcrossTilesAndJobs) {
  const KMatrix km = case_matrix();
  GaConfig base;
  base.rta = worst_case_assumptions();
  base.eval_fractions = {0.25};
  base.population = 8;
  base.archive = 4;
  base.generations = 3;
  base.parallelism = 1;
  base.tile = 0;
  const GaResult ref = optimize_priorities(km, base);
  const GaResult ref2 = optimize_priorities_nsga2(km, base);

  for (const int jobs : kJobs) {
    for (const int tile : kTiles) {
      GaConfig cfg = base;
      cfg.parallelism = jobs;
      cfg.tile = tile;
      const std::string where = "jobs=" + std::to_string(jobs) + " tile=" + std::to_string(tile);

      const GaResult got = optimize_priorities(km, cfg);
      EXPECT_EQ(ref.best.order, got.best.order) << where;
      EXPECT_EQ(ref.best.misses, got.best.misses) << where;
      EXPECT_EQ(ref.best.robustness_cost, got.best.robustness_cost) << where;
      EXPECT_EQ(ref.best_misses_history, got.best_misses_history) << where;
      ASSERT_EQ(ref.pareto.size(), got.pareto.size()) << where;

      const GaResult got2 = optimize_priorities_nsga2(km, cfg);
      EXPECT_EQ(ref2.best.order, got2.best.order) << where;
      EXPECT_EQ(ref2.best.misses, got2.best.misses) << where;
      EXPECT_EQ(ref2.best_misses_history, got2.best_misses_history) << where;
    }
  }
}

TEST(TileInvariance, NegativeTileRejected) {
  const KMatrix km = case_matrix();
  JitterSweepConfig sweep;
  sweep.rta = worst_case_assumptions();
  sweep.tile = -1;
  EXPECT_THROW(sweep_jitter(km, sweep), std::invalid_argument);

  ErrorSweepConfig errors;
  errors.rta = worst_case_assumptions();
  errors.tile = -3;
  EXPECT_THROW(sweep_errors(km, errors), std::invalid_argument);

  GridSweepConfig grid;
  grid.rta = worst_case_assumptions();
  grid.tile = -7;
  EXPECT_THROW(sweep_grid(km, grid), std::invalid_argument);

  GaConfig ga;
  ga.rta = worst_case_assumptions();
  ga.eval_fractions = {0.25};
  ga.population = 8;
  ga.archive = 4;
  ga.generations = 1;
  ga.tile = -1;
  EXPECT_THROW(optimize_priorities(km, ga), std::invalid_argument);
  EXPECT_THROW(optimize_priorities_nsga2(km, ga), std::invalid_argument);
}

}  // namespace
}  // namespace symcan

// Acceptance gate: probabilistic analysis results — raw atoms and the
// rendered report bytes — are identical at every jobs x tile
// combination. The convolution pipeline is pure integer arithmetic, so
// parallelism and tiling are scheduling choices only; this suite (run
// under TSan via the `determinism` label) pins that contract at
// jobs {1, 4} x tile {1, 7, 64}.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "symcan/analysis/presets.hpp"
#include "symcan/analysis/prob_rta.hpp"
#include "symcan/pipeline/stages.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct Fanout {
  int jobs;
  int tile;
};

const std::vector<Fanout>& fanouts() {
  static const std::vector<Fanout> kFanouts = {
      {1, 1}, {1, 7}, {1, 64}, {4, 1}, {4, 7}, {4, 64},
  };
  return kFanouts;
}

KMatrix busy_matrix(std::uint64_t seed) {
  PowertrainConfig wl;
  wl.seed = seed;
  wl.message_count = 28;
  wl.ecu_count = 5;
  wl.target_utilization = 0.60;
  return generate_powertrain(wl);
}

TEST(ProbDeterminism, AtomsIdenticalAcrossJobsAndTiles) {
  const KMatrix km = busy_matrix(7);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 250'000;
  cfg.stuff_ppm = 900'000;
  cfg.jitter_ppm = 750'000;
  cfg.parallelism = fanouts()[0].jobs;
  cfg.tile = fanouts()[0].tile;
  const ProbBusResult baseline = analyze_prob(km, cfg);
  for (std::size_t f = 1; f < fanouts().size(); ++f) {
    cfg.parallelism = fanouts()[f].jobs;
    cfg.tile = fanouts()[f].tile;
    const ProbBusResult got = analyze_prob(km, cfg);
    ASSERT_EQ(got.messages.size(), baseline.messages.size());
    for (std::size_t i = 0; i < baseline.messages.size(); ++i) {
      const std::string tag = baseline.messages[i].det.name + " jobs=" +
                              std::to_string(fanouts()[f].jobs) + " tile=" +
                              std::to_string(fanouts()[f].tile);
      EXPECT_EQ(got.messages[i].response.atoms(), baseline.messages[i].response.atoms()) << tag;
      EXPECT_EQ(got.messages[i].miss_weight, baseline.messages[i].miss_weight) << tag;
      EXPECT_EQ(got.messages[i].rungs, baseline.messages[i].rungs) << tag;
      EXPECT_EQ(got.messages[i].det.wcrt, baseline.messages[i].det.wcrt) << tag;
    }
  }
}

TEST(ProbDeterminism, RenderedReportByteIdenticalAcrossJobsAndTiles) {
  const KMatrix km = busy_matrix(19);
  const CanRtaConfig rta = worst_case_assumptions();
  pipeline::ProbSpec spec;
  spec.fault_ppm = 100'000;
  spec.stuff_ppm = 850'000;
  spec.jitter_ppm = 500'000;
  spec.jobs = fanouts()[0].jobs;
  spec.tile = fanouts()[0].tile;
  std::ostringstream baseline;
  const int rc0 = pipeline::render_prob(km, rta, spec, baseline);
  for (std::size_t f = 1; f < fanouts().size(); ++f) {
    spec.jobs = fanouts()[f].jobs;
    spec.tile = fanouts()[f].tile;
    std::ostringstream out;
    const int rc = pipeline::render_prob(km, rta, spec, out);
    EXPECT_EQ(rc, rc0);
    EXPECT_EQ(out.str(), baseline.str())
        << "jobs=" << fanouts()[f].jobs << " tile=" << fanouts()[f].tile;
  }
}

TEST(ProbDeterminism, SharedCacheDoesNotPerturbParallelResults) {
  // One IncrementalRta shared across repeated parallel fan-outs: cached
  // rung ladders must be bit-identical to fresh solves regardless of
  // which worker populated them.
  const KMatrix km = busy_matrix(31);
  ProbRtaConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.fault_ppm = 333'333;
  cfg.parallelism = 4;
  cfg.tile = 7;
  analysis::IncrementalRta rta;
  const ProbBusResult first = rta.analyze_prob(km, cfg);
  const ProbBusResult second = rta.analyze_prob(km, cfg);
  const ProbBusResult fresh = analyze_prob(km, cfg);
  ASSERT_EQ(first.messages.size(), fresh.messages.size());
  for (std::size_t i = 0; i < fresh.messages.size(); ++i) {
    EXPECT_EQ(first.messages[i].response.atoms(), fresh.messages[i].response.atoms());
    EXPECT_EQ(second.messages[i].response.atoms(), fresh.messages[i].response.atoms());
    EXPECT_EQ(first.messages[i].miss_weight, fresh.messages[i].miss_weight);
    EXPECT_EQ(second.messages[i].miss_weight, fresh.messages[i].miss_weight);
  }
}

}  // namespace
}  // namespace symcan

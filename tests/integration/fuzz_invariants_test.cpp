// Randomized invariant sweep: for a grid of generator seeds and
// configurations, the toolkit's global invariants must hold. This is the
// wide net behind the targeted unit tests — every failure here is a
// soundness bug somewhere in the chain.

#include <gtest/gtest.h>

#include "symcan/analysis/presets.hpp"
#include "symcan/can/kmatrix_io.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/sim/simulator.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct FuzzParam {
  std::uint64_t seed;
  double util;
  int messages;
  const char* label;
};
void PrintTo(const FuzzParam& p, std::ostream* os) { *os << p.label; }

class FuzzInvariants : public ::testing::TestWithParam<FuzzParam> {
 protected:
  KMatrix matrix() const {
    PowertrainConfig cfg;
    cfg.seed = GetParam().seed;
    cfg.target_utilization = GetParam().util;
    cfg.message_count = GetParam().messages;
    cfg.ecu_count = 3 + static_cast<int>(GetParam().seed % 4);
    return generate_powertrain(cfg);
  }
};

TEST_P(FuzzInvariants, GeneratorProducesValidMatrices) {
  const KMatrix km = matrix();
  EXPECT_NO_THROW(km.validate());
  EXPECT_NEAR(km.utilization(true), GetParam().util, 0.03);
}

TEST_P(FuzzInvariants, CsvRoundTripPreservesAnalysis) {
  const KMatrix km = matrix();
  const KMatrix back = kmatrix_from_csv(kmatrix_to_csv(km));
  const BusResult a = CanRta{km, worst_case_assumptions()}.analyze();
  const BusResult b = CanRta{back, worst_case_assumptions()}.analyze();
  for (std::size_t i = 0; i < a.messages.size(); ++i)
    ASSERT_EQ(a.messages[i].wcrt, b.messages[i].wcrt) << a.messages[i].name;
}

TEST_P(FuzzInvariants, HigherPriorityNeverWorseOffUnderSamePolicy) {
  // Within one matrix under D=period: response times grow monotonically
  // down the priority order *for equal frame times*; we assert the
  // weaker, always-true variant: every message's wcrt is at least the
  // blocking-free lower bound and at most the busy period.
  KMatrix km = matrix();
  assume_jitter_fraction(km, 0.2, true);
  const BusResult res = CanRta{km, best_case_assumptions()}.analyze();
  for (const auto& m : res.messages) {
    if (m.diverged) continue;
    EXPECT_GE(m.wcrt, m.bcrt) << m.name;
    EXPECT_GE(m.wcrt, m.blocking) << m.name;
    EXPECT_GE(m.busy_period, m.bcrt) << m.name;
  }
}

TEST_P(FuzzInvariants, DeadlineMonotonicNeverLosesToRandomShuffle) {
  // DM is a strong heuristic: it must never be worse than a random
  // permutation drawn from the same seed (a weak but fully general
  // sanity property evaluated at a stressful jitter point).
  KMatrix km = matrix();
  const PriorityOrder dm = deadline_monotonic_order(km);
  PriorityOrder shuffled(km.size());
  for (std::size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i;
  Rng rng{GetParam().seed * 31 + 7};
  rng.shuffle(shuffled);

  KMatrix km_dm = apply_priority_order(km, dm);
  KMatrix km_sh = apply_priority_order(km, shuffled);
  assume_jitter_fraction(km_dm, 0.3, true);
  assume_jitter_fraction(km_sh, 0.3, true);
  const auto dm_miss = CanRta{km_dm, best_case_assumptions()}.analyze().miss_count();
  const auto sh_miss = CanRta{km_sh, best_case_assumptions()}.analyze().miss_count();
  EXPECT_LE(dm_miss, sh_miss);
}

TEST_P(FuzzInvariants, SimulationObeysAnalysisBound) {
  KMatrix km = matrix();
  assume_jitter_fraction(km, 0.15, true);
  CanRtaConfig rta;
  rta.worst_case_stuffing = true;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  const BusResult bound = CanRta{km, rta}.analyze();

  SimConfig sim;
  sim.duration = Duration::s(3);
  sim.seed = GetParam().seed + 1000;
  sim.stuffing = StuffingMode::kRandom;
  const SimResult obs = simulate(km, sim);
  for (std::size_t i = 0; i < km.size(); ++i) {
    if (bound.messages[i].diverged) continue;
    EXPECT_LE(obs.messages[i].wcrt_observed, bound.messages[i].wcrt) << km.messages()[i].name;
  }
}

TEST_P(FuzzInvariants, OffsetAssignmentKeepsAnalysisSound) {
  KMatrix km = matrix();
  snap_periods(km, Duration::ms(1));
  assign_tt_offsets(km);
  assume_jitter_fraction(km, 0.1, true);
  // Worst-case stuffing so the bound dominates the simulator's sampled
  // frame lengths (best-case frame-time assumptions are not an oracle).
  CanRtaConfig aware;
  aware.worst_case_stuffing = true;
  aware.deadline_override = DeadlinePolicy::kPeriod;
  CanRtaConfig blind = aware;
  blind.use_offsets = false;
  const BusResult ra = CanRta{km, aware}.analyze();
  const BusResult rb = CanRta{km, blind}.analyze();
  for (std::size_t i = 0; i < ra.messages.size(); ++i)
    EXPECT_LE(ra.messages[i].wcrt, rb.messages[i].wcrt) << ra.messages[i].name;

  // And the offset-aware bound still dominates a simulation that follows
  // the same schedule.
  SimConfig sim;
  sim.duration = Duration::s(3);
  sim.seed = GetParam().seed + 2000;
  sim.stuffing = StuffingMode::kRandom;
  const SimResult obs = simulate(km, sim);
  for (std::size_t i = 0; i < km.size(); ++i) {
    if (ra.messages[i].diverged) continue;
    EXPECT_LE(obs.messages[i].wcrt_observed, ra.messages[i].wcrt) << km.messages()[i].name;
  }
}

TEST_P(FuzzInvariants, ParallelSweepInvariantsHold) {
  // The parallel sweep path must preserve the analysis invariants on
  // arbitrary generated matrices: more assumed jitter can only make
  // worst-case response times worse (monotone non-decreasing per
  // message), and the miss fraction is a true fraction.
  const KMatrix km = matrix();
  JitterSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  cfg.parallelism = 4;
  const JitterSweepResult res = sweep_jitter(km, cfg);
  ASSERT_FALSE(res.results.empty());
  for (std::size_t i = 0; i < res.fractions.size(); ++i) {
    EXPECT_GE(res.miss_fraction(i), 0.0);
    EXPECT_LE(res.miss_fraction(i), 1.0);
  }
  for (std::size_t m = 0; m < km.size(); ++m)
    for (std::size_t i = 1; i < res.results.size(); ++i)
      EXPECT_GE(res.results[i].messages[m].wcrt, res.results[i - 1].messages[m].wcrt)
          << km.messages()[m].name << " at fraction " << res.fractions[i];
}

TEST_P(FuzzInvariants, ParallelSweepMatchesSerialOnRandomMatrices) {
  // Randomized determinism net behind the targeted suite: serial and
  // parallel sweeps agree bit-exactly on every generated matrix.
  const KMatrix km = matrix();
  JitterSweepConfig serial;
  serial.rta = worst_case_assumptions();
  serial.parallelism = 1;
  JitterSweepConfig parallel = serial;
  parallel.parallelism = 3;
  const JitterSweepResult a = sweep_jitter(km, serial);
  const JitterSweepResult b = sweep_jitter(km, parallel);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_EQ(a.results[i].messages.size(), b.results[i].messages.size());
    for (std::size_t m = 0; m < a.results[i].messages.size(); ++m) {
      ASSERT_EQ(a.results[i].messages[m].wcrt, b.results[i].messages[m].wcrt)
          << a.results[i].messages[m].name;
      ASSERT_EQ(a.results[i].messages[m].schedulable, b.results[i].messages[m].schedulable)
          << a.results[i].messages[m].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzInvariants,
    ::testing::Values(FuzzParam{11, 0.40, 24, "s11_u40"}, FuzzParam{23, 0.55, 40, "s23_u55"},
                      FuzzParam{37, 0.65, 56, "s37_u65"}, FuzzParam{51, 0.35, 16, "s51_u35"},
                      FuzzParam{64, 0.50, 32, "s64_u50"}, FuzzParam{77, 0.60, 48, "s77_u60"},
                      FuzzParam{89, 0.45, 64, "s89_u45"}, FuzzParam{101, 0.70, 56, "s101_u70"}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) { return info.param.label; });

}  // namespace
}  // namespace symcan

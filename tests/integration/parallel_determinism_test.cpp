// Parallel-vs-serial determinism: the whole point of the execution
// substrate is that parallelism is invisible in the results. Every fan-out
// path (jitter sweep, error sweep, GA, NSGA-II, sensitivity report,
// extensibility search) must produce bit-exact identical output at
// parallelism = 1 and parallelism = 4 on the seeded powertrain K-Matrix.

#include <gtest/gtest.h>

#include "symcan/analysis/presets.hpp"
#include "symcan/opt/ga.hpp"
#include "symcan/opt/nsga2.hpp"
#include "symcan/sensitivity/extensibility.hpp"
#include "symcan/sensitivity/robustness.hpp"
#include "symcan/sensitivity/sweep.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix case_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

void expect_same_bus_result(const BusResult& a, const BusResult& b, const std::string& where) {
  ASSERT_EQ(a.messages.size(), b.messages.size()) << where;
  EXPECT_EQ(a.utilization, b.utilization) << where;
  for (std::size_t m = 0; m < a.messages.size(); ++m) {
    const MessageResult& x = a.messages[m];
    const MessageResult& y = b.messages[m];
    EXPECT_EQ(x.name, y.name) << where;
    EXPECT_EQ(x.wcrt, y.wcrt) << where << " " << x.name;
    EXPECT_EQ(x.bcrt, y.bcrt) << where << " " << x.name;
    EXPECT_EQ(x.deadline, y.deadline) << where << " " << x.name;
    EXPECT_EQ(x.blocking, y.blocking) << where << " " << x.name;
    EXPECT_EQ(x.busy_period, y.busy_period) << where << " " << x.name;
    EXPECT_EQ(x.instances, y.instances) << where << " " << x.name;
    EXPECT_EQ(x.schedulable, y.schedulable) << where << " " << x.name;
    EXPECT_EQ(x.diverged, y.diverged) << where << " " << x.name;
  }
}

void expect_same_individuals(const std::vector<GaIndividual>& a, const std::vector<GaIndividual>& b,
                             const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].order, b[i].order) << where << " #" << i;
    EXPECT_EQ(a[i].misses, b[i].misses) << where << " #" << i;
    EXPECT_EQ(a[i].robustness_cost, b[i].robustness_cost) << where << " #" << i;
  }
}

TEST(ParallelDeterminism, JitterSweepBitExact) {
  const KMatrix km = case_matrix();
  JitterSweepConfig serial;
  serial.rta = worst_case_assumptions();
  serial.parallelism = 1;
  JitterSweepConfig parallel = serial;
  parallel.parallelism = 4;

  const JitterSweepResult a = sweep_jitter(km, serial);
  const JitterSweepResult b = sweep_jitter(km, parallel);
  ASSERT_EQ(a.fractions, b.fractions);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    expect_same_bus_result(a.results[i], b.results[i],
                           "jitter point " + std::to_string(a.fractions[i]));
}

TEST(ParallelDeterminism, ErrorSweepBitExact) {
  const KMatrix km = case_matrix();
  ErrorSweepConfig serial;
  serial.rta = worst_case_assumptions();
  serial.parallelism = 1;
  ErrorSweepConfig parallel = serial;
  parallel.parallelism = 4;

  const ErrorSweepResult a = sweep_errors(km, serial);
  const ErrorSweepResult b = sweep_errors(km, parallel);
  ASSERT_EQ(a.min_inter_error.size(), b.min_inter_error.size());
  for (std::size_t i = 0; i < a.min_inter_error.size(); ++i) {
    EXPECT_EQ(a.min_inter_error[i], b.min_inter_error[i]);
    expect_same_bus_result(a.results[i], b.results[i], "error point " + std::to_string(i));
  }
}

TEST(ParallelDeterminism, GaBitExact) {
  const KMatrix km = case_matrix();
  GaConfig serial;
  serial.rta = worst_case_assumptions();
  serial.population = 16;
  serial.archive = 8;
  serial.generations = 6;
  serial.seeds = {current_order(km), deadline_monotonic_order(km)};
  serial.parallelism = 1;
  GaConfig parallel = serial;
  parallel.parallelism = 4;

  const GaResult a = optimize_priorities(km, serial);
  const GaResult b = optimize_priorities(km, parallel);
  EXPECT_EQ(a.best.order, b.best.order);
  EXPECT_EQ(a.best.misses, b.best.misses);
  EXPECT_EQ(a.best.robustness_cost, b.best.robustness_cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_misses_history, b.best_misses_history);
  expect_same_individuals(a.pareto, b.pareto, "GA pareto");
}

TEST(ParallelDeterminism, Nsga2FrontBitExact) {
  const KMatrix km = case_matrix();
  GaConfig serial;
  serial.rta = worst_case_assumptions();
  serial.population = 16;
  serial.generations = 6;
  serial.seeds = {current_order(km), deadline_monotonic_order(km)};
  serial.parallelism = 1;
  GaConfig parallel = serial;
  parallel.parallelism = 4;

  const GaResult a = optimize_priorities_nsga2(km, serial);
  const GaResult b = optimize_priorities_nsga2(km, parallel);
  EXPECT_EQ(a.best.order, b.best.order);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_misses_history, b.best_misses_history);
  expect_same_individuals(a.pareto, b.pareto, "NSGA-II front");
}

TEST(ParallelDeterminism, SensitivityReportBitExact) {
  const KMatrix km = case_matrix();
  JitterSweepConfig serial;
  serial.rta = best_case_assumptions();
  serial.parallelism = 1;
  JitterSweepConfig parallel = serial;
  parallel.parallelism = 4;

  const SensitivityReport a = analyze_sensitivity(km, serial);
  const SensitivityReport b = analyze_sensitivity(km, parallel);
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (std::size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].name, b.messages[i].name);
    EXPECT_EQ(a.messages[i].cls, b.messages[i].cls) << a.messages[i].name;
    EXPECT_EQ(a.messages[i].wcrt_at_zero, b.messages[i].wcrt_at_zero) << a.messages[i].name;
    EXPECT_EQ(a.messages[i].wcrt_at_max, b.messages[i].wcrt_at_max) << a.messages[i].name;
    EXPECT_EQ(a.messages[i].relative_growth, b.messages[i].relative_growth) << a.messages[i].name;
    EXPECT_EQ(a.messages[i].max_tolerable_fraction, b.messages[i].max_tolerable_fraction)
        << a.messages[i].name;
  }
}

TEST(ParallelDeterminism, ExtensibilityBitExact) {
  const KMatrix km = case_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  ExtensionProfile profile;
  profile.first_id = 0x600;

  const ExtensibilityReport a = max_additional_messages(km, rta, profile, 64, 1);
  const ExtensibilityReport b = max_additional_messages(km, rta, profile, 64, 4);
  EXPECT_EQ(a.max_additional_messages, b.max_additional_messages);
  EXPECT_EQ(a.utilization_at_max, b.utilization_at_max);
  EXPECT_EQ(a.capped, b.capped);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].added, b.steps[i].added);
    EXPECT_EQ(a.steps[i].utilization, b.steps[i].utilization);
    EXPECT_EQ(a.steps[i].schedulable, b.steps[i].schedulable);
    EXPECT_EQ(a.steps[i].first_miss, b.steps[i].first_miss);
  }
}

TEST(ParallelDeterminism, HardwareWidthMatchesSerialToo) {
  // parallelism = 0 (hardware concurrency) is the CLI default; it must
  // agree with serial exactly like any explicit width.
  const KMatrix km = case_matrix();
  JitterSweepConfig serial;
  serial.rta = worst_case_assumptions();
  serial.parallelism = 1;
  JitterSweepConfig hardware = serial;
  hardware.parallelism = 0;
  const JitterSweepResult a = sweep_jitter(km, serial);
  const JitterSweepResult b = sweep_jitter(km, hardware);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i)
    expect_same_bus_result(a.results[i], b.results[i], "hw point " + std::to_string(i));
}

}  // namespace
}  // namespace symcan

// Differential fuzz harness for the incremental RTA cache: starting from
// seeded random K-matrices, apply long random sequences of the edits the
// optimizer/sweep hot loops actually perform — priority swaps, jitter
// edits, error-model swaps, config-flag flips — and after *every* edit
// demand that a shared IncrementalRta agrees with a from-scratch CanRta
// in every result field, bit for bit. One surviving stale or collided
// cache entry anywhere in the edit space fails this suite.
//
// The shared-cache variants run the same discipline from four worker
// threads against one cache instance; the suite carries the `determinism`
// ctest label so it runs under TSan alongside the other concurrency
// suites (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "symcan/analysis/incremental_rta.hpp"
#include "symcan/analysis/presets.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/util/parallel.hpp"
#include "symcan/util/rng.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

struct DiffParam {
  std::uint64_t seed;
  int messages;
  double util;
  bool offsets;
  const char* label;
};
void PrintTo(const DiffParam& p, std::ostream* os) { *os << p.label; }

/// One evolving analysis problem: the matrix being edited plus the
/// assumption set it is analyzed under.
struct Problem {
  KMatrix km;
  CanRtaConfig cfg;
};

Problem initial_problem(const DiffParam& p) {
  PowertrainConfig wl;
  wl.seed = p.seed;
  wl.message_count = p.messages;
  wl.ecu_count = 3 + static_cast<int>(p.seed % 4);
  wl.target_utilization = p.util;
  Problem prob{generate_powertrain(wl), worst_case_assumptions()};
  if (p.offsets) {
    snap_periods(prob.km, Duration::ms(1));
    assign_tt_offsets(prob.km);
  }
  return prob;
}

/// Apply one random edit drawn from the moves the hot loops make.
void mutate(Problem& p, Rng& rng) {
  switch (rng.index(7)) {
    case 0: {  // random priority swap (a GA mutation step)
      PriorityOrder order = current_order(p.km);
      const std::size_t a = rng.index(order.size());
      const std::size_t b = rng.index(order.size());
      std::swap(order[a], order[b]);
      p.km = apply_priority_order(p.km, order);
      break;
    }
    case 1:  // uniform jitter edit (a sweep step)
      assume_jitter_fraction(p.km, rng.uniform_real(0.0, 0.6), rng.chance(0.5));
      break;
    case 2:  // error-model swap
      switch (rng.index(3)) {
        case 0:
          p.cfg.errors = std::make_shared<NoErrors>();
          break;
        case 1:
          p.cfg.errors = std::make_shared<SporadicErrors>(
              Duration::ms(rng.uniform_int(10, 80)), rng.uniform_int(0, 2));
          break;
        default:
          p.cfg.errors = std::make_shared<BurstErrors>(
              Duration::ms(rng.uniform_int(15, 60)), rng.uniform_int(1, 4));
          break;
      }
      break;
    case 3:
      p.cfg.worst_case_stuffing = !p.cfg.worst_case_stuffing;
      break;
    case 4:
      p.cfg.model_controller_queues = !p.cfg.model_controller_queues;
      break;
    case 5:
      p.cfg.use_offsets = !p.cfg.use_offsets;
      break;
    default: {
      const std::size_t k = rng.index(3);
      if (k == 0)
        p.cfg.deadline_override.reset();
      else
        p.cfg.deadline_override =
            k == 1 ? DeadlinePolicy::kPeriod : DeadlinePolicy::kMinReArrival;
      break;
    }
  }
}

/// Field-by-field comparison collected as text, so worker threads can
/// report mismatches without touching gtest state concurrently.
std::vector<std::string> diff_results(const BusResult& cached, const BusResult& fresh) {
  std::vector<std::string> out;
  auto mismatch = [&](const std::string& name, const char* field, auto a, auto b) {
    std::ostringstream ss;
    ss << name << "." << field << ": cached " << a << " vs fresh " << b;
    out.push_back(ss.str());
  };
  if (cached.messages.size() != fresh.messages.size()) {
    mismatch("<bus>", "messages.size", cached.messages.size(), fresh.messages.size());
    return out;
  }
  if (cached.utilization != fresh.utilization)
    mismatch("<bus>", "utilization", cached.utilization, fresh.utilization);
  for (std::size_t i = 0; i < fresh.messages.size(); ++i) {
    const MessageResult& c = cached.messages[i];
    const MessageResult& f = fresh.messages[i];
    if (c.name != f.name) mismatch(f.name, "name", c.name, f.name);
    if (c.id != f.id) mismatch(f.name, "id", c.id, f.id);
    if (c.wcrt != f.wcrt) mismatch(f.name, "wcrt", c.wcrt.count_ns(), f.wcrt.count_ns());
    if (c.bcrt != f.bcrt) mismatch(f.name, "bcrt", c.bcrt.count_ns(), f.bcrt.count_ns());
    if (c.deadline != f.deadline)
      mismatch(f.name, "deadline", c.deadline.count_ns(), f.deadline.count_ns());
    if (c.blocking != f.blocking)
      mismatch(f.name, "blocking", c.blocking.count_ns(), f.blocking.count_ns());
    if (c.busy_period != f.busy_period)
      mismatch(f.name, "busy_period", c.busy_period.count_ns(), f.busy_period.count_ns());
    if (c.instances != f.instances) mismatch(f.name, "instances", c.instances, f.instances);
    if (c.fixedpoint_iterations != f.fixedpoint_iterations)
      mismatch(f.name, "fixedpoint_iterations", c.fixedpoint_iterations,
               f.fixedpoint_iterations);
    if (c.schedulable != f.schedulable)
      mismatch(f.name, "schedulable", c.schedulable, f.schedulable);
    if (c.diverged != f.diverged) mismatch(f.name, "diverged", c.diverged, f.diverged);
  }
  return out;
}

/// Run one edit sequence against a (possibly shared) cache; returns every
/// mismatch found, tagged with the step that produced it.
std::vector<std::string> run_sequence(Problem prob, IncrementalRta& rta, std::uint64_t seed,
                                      int steps) {
  Rng rng{seed};
  std::vector<std::string> failures;
  for (int step = 0; step < steps; ++step) {
    mutate(prob, rng);
    const BusResult cached = rta.analyze(prob.km, prob.cfg);
    const BusResult fresh = CanRta{prob.km, prob.cfg}.analyze();
    for (const std::string& d : diff_results(cached, fresh))
      failures.push_back("step " + std::to_string(step) + ": " + d);
  }
  return failures;
}

class RtaCacheDifferential : public ::testing::TestWithParam<DiffParam> {};

TEST_P(RtaCacheDifferential, SerialEditSequencesStayBitIdentical) {
  const DiffParam p = GetParam();
  IncrementalRta rta;  // one cache across both sequences: cross-matrix reuse
  for (int seq = 0; seq < 2; ++seq) {
    const std::vector<std::string> failures =
        run_sequence(initial_problem(p), rta, stream_seed(p.seed, static_cast<std::uint64_t>(seq)),
                     /*steps=*/15);
    for (const std::string& f : failures) ADD_FAILURE() << f;
  }
  EXPECT_GT(rta.stats().hits, 0) << "fuzz ran without ever exercising the hit path";
}

TEST_P(RtaCacheDifferential, SharedCacheUnderParallelEditSequencesStaysBitIdentical) {
  // Four workers fuzz four independent edit sequences against ONE cache:
  // every lookup races with inserts and evictions from the other three.
  const DiffParam p = GetParam();
  IncrementalRta rta;
  ParallelExecutor pool{4};
  const auto failures = pool.parallel_map_indexed(4, [&](std::size_t worker) {
    return run_sequence(initial_problem(p), rta,
                        stream_seed(p.seed, 100 + static_cast<std::uint64_t>(worker)),
                        /*steps=*/8);
  });
  for (const auto& per_worker : failures)
    for (const std::string& f : per_worker) ADD_FAILURE() << f;
  EXPECT_GT(rta.stats().hits, 0);
}

TEST_P(RtaCacheDifferential, SharedCachePerMessageFanOutMatchesFresh) {
  // The analyze_message() path the sensitivity searches use, fanned out
  // across a pool with the whole-bus path interleaved.
  const DiffParam p = GetParam();
  Problem prob = initial_problem(p);
  IncrementalRta rta;
  ParallelExecutor pool{4};
  Rng rng{stream_seed(p.seed, 7)};
  for (int step = 0; step < 4; ++step) {
    mutate(prob, rng);
    const BusResult fresh = CanRta{prob.km, prob.cfg}.analyze();
    const std::vector<MessageResult> per_message = pool.parallel_map_indexed(
        prob.km.size(), [&](std::size_t i) { return rta.analyze_message(prob.km, prob.cfg, i); });
    BusResult assembled;
    assembled.utilization = fresh.utilization;  // not produced by the per-message path
    assembled.messages = per_message;
    for (const std::string& d : diff_results(assembled, fresh))
      ADD_FAILURE() << "step " << step << ": " << d;
  }
}

TEST_P(RtaCacheDifferential, TinyCapacityThrashingStaysBitIdentical) {
  // Eviction pressure: a capacity far below the working set forces the
  // replacement path on nearly every analysis.
  const DiffParam p = GetParam();
  RtaCacheConfig cache;
  cache.capacity = 5;
  IncrementalRta rta{cache};
  const std::vector<std::string> failures =
      run_sequence(initial_problem(p), rta, stream_seed(p.seed, 9), /*steps=*/8);
  for (const std::string& f : failures) ADD_FAILURE() << f;
  EXPECT_GT(rta.stats().evictions, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RtaCacheDifferential,
    ::testing::Values(DiffParam{11, 16, 0.40, false, "s11_m16"},
                      DiffParam{23, 24, 0.55, false, "s23_m24"},
                      DiffParam{37, 32, 0.62, false, "s37_m32"},
                      DiffParam{51, 12, 0.35, true, "s51_m12_tt"},
                      DiffParam{64, 24, 0.50, true, "s64_m24_tt"},
                      DiffParam{77, 40, 0.58, false, "s77_m40"},
                      DiffParam{89, 20, 0.45, true, "s89_m20_tt"},
                      DiffParam{101, 28, 0.66, false, "s101_m28"}),
    [](const ::testing::TestParamInfo<DiffParam>& info) { return info.param.label; });

}  // namespace
}  // namespace symcan

#include "symcan/sensitivity/robustness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix case_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

JitterSweepConfig sweep_config() {
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  return cfg;
}

TEST(Robustness, ReportCoversEveryMessage) {
  const KMatrix km = case_matrix();
  const SensitivityReport rep = analyze_sensitivity(km, sweep_config());
  ASSERT_EQ(rep.messages.size(), km.size());
  for (std::size_t i = 0; i < km.size(); ++i) {
    EXPECT_EQ(rep.messages[i].name, km.messages()[i].name);
    EXPECT_EQ(rep.messages[i].id, km.messages()[i].id);
  }
}

TEST(Robustness, ClassesSpanTheSpectrum) {
  // Figure 4 shows robust, medium and (very) sensitive messages on the
  // same bus: the case-study matrix must exhibit at least robust plus a
  // sensitive-or-worse class.
  const SensitivityReport rep = analyze_sensitivity(case_matrix(), sweep_config());
  EXPECT_GT(rep.count(Robustness::kRobust), 0u);
  EXPECT_GT(rep.count(Robustness::kMedium) + rep.count(Robustness::kSensitive) +
                rep.count(Robustness::kVerySensitive),
            0u);
}

TEST(Robustness, HighPriorityMessagesAreRobust) {
  const KMatrix km = case_matrix();
  const SensitivityReport rep = analyze_sensitivity(km, sweep_config());
  // The highest-priority message's response is dominated by blocking and
  // its own frame; jitter of others barely moves it.
  const auto order = km.priority_order();
  const MessageSensitivity& top = rep.messages[order.front()];
  EXPECT_EQ(top.cls, Robustness::kRobust) << top.name << " growth " << top.relative_growth;
}

TEST(Robustness, GrowthMatchesCurveEndpoints) {
  const KMatrix km = case_matrix();
  const JitterSweepConfig cfg = sweep_config();
  const SensitivityReport rep = analyze_sensitivity(km, cfg);
  const JitterSweepResult sweep = sweep_jitter(km, cfg);
  for (const auto& m : rep.messages) {
    const auto curve = sweep.response_curve(m.name);
    EXPECT_EQ(m.wcrt_at_zero, curve.front());
    EXPECT_EQ(m.wcrt_at_max, curve.back());
  }
}

TEST(Robustness, ThresholdsChangeClassification) {
  const KMatrix km = case_matrix();
  RobustnessThresholds strict;
  strict.robust_below = -1.0;  // growth >= 0 always: nothing is robust
  const SensitivityReport rep = analyze_sensitivity(km, sweep_config(), strict);
  EXPECT_EQ(rep.count(Robustness::kRobust), 0u);
}

TEST(MaxTolerableJitter, BracketsTheBoundary) {
  const KMatrix km = case_matrix();
  const CanRtaConfig rta = worst_case_assumptions();
  // Pick the lowest-priority message: typically the most sensitive.
  const auto order = km.priority_order();
  const std::string victim = km.messages()[order.back()].name;
  const double frac = max_tolerable_jitter_fraction(km, rta, victim, 1.0, 0.005);
  ASSERT_GT(frac, 0.0);
  ASSERT_LT(frac, 1.0);
  // Schedulable at the reported fraction, not schedulable slightly above.
  auto sched_at = [&](double f) {
    KMatrix v = km;
    assume_jitter_fraction(v, f, true);
    std::size_t idx = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
      if (v.messages()[i].name == victim) idx = i;
    return CanRta{v, rta}.analyze_message(idx).schedulable;
  };
  EXPECT_TRUE(sched_at(frac));
  EXPECT_FALSE(sched_at(frac + 0.02));
}

TEST(MaxTolerableJitter, ZeroWhenAlreadyInfeasible) {
  // Shrink all periods until the lowest-priority message misses even at
  // zero jitter under worst-case assumptions.
  KMatrix km = case_matrix();
  scale_periods(km, 0.4);
  const auto order = km.priority_order();
  const std::string victim = km.messages()[order.back()].name;
  const CanRtaConfig rta = worst_case_assumptions();
  KMatrix v = km;
  assume_jitter_fraction(v, 0.0, true);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v.messages()[i].name == victim) idx = i;
  if (CanRta{v, rta}.analyze_message(idx).schedulable)
    GTEST_SKIP() << "victim unexpectedly schedulable; scaling too mild";
  EXPECT_EQ(max_tolerable_jitter_fraction(km, rta, victim), 0.0);
}

TEST(MaxTolerableJitter, CapReturnedWhenAlwaysFeasible) {
  // A nearly empty bus tolerates the full cap.
  KMatrix km{"idle", BitTiming{500'000}};
  EcuNode n;
  n.name = "A";
  km.add_node(n);
  CanMessage m;
  m.name = "solo";
  m.id = 1;
  m.payload_bytes = 1;
  m.period = Duration::ms(100);
  m.sender = "A";
  m.receivers = {"A"};
  km.add_message(m);
  CanRtaConfig rta;
  rta.deadline_override = DeadlinePolicy::kPeriod;
  EXPECT_DOUBLE_EQ(max_tolerable_jitter_fraction(km, rta, "solo", 0.9), 0.9);
}

TEST(MaxTolerableJitter, UnknownMessageThrows) {
  EXPECT_THROW(max_tolerable_jitter_fraction(case_matrix(), best_case_assumptions(), "nope"),
               std::invalid_argument);
}

TEST(RobustnessNames, ToString) {
  EXPECT_STREQ(to_string(Robustness::kRobust), "robust");
  EXPECT_STREQ(to_string(Robustness::kMedium), "medium");
  EXPECT_STREQ(to_string(Robustness::kSensitive), "sensitive");
  EXPECT_STREQ(to_string(Robustness::kVerySensitive), "very-sensitive");
}

}  // namespace
}  // namespace symcan

#include "symcan/sensitivity/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix case_matrix() { return generate_powertrain(PowertrainConfig::case_study()); }

TEST(JitterSweep, ProducesOnePointPerFraction) {
  JitterSweepConfig cfg;
  cfg.from = 0.0;
  cfg.to = 0.60;
  cfg.step = 0.05;
  cfg.rta = best_case_assumptions();
  const JitterSweepResult res = sweep_jitter(case_matrix(), cfg);
  EXPECT_EQ(res.fractions.size(), 13u);
  EXPECT_EQ(res.results.size(), 13u);
  EXPECT_DOUBLE_EQ(res.fractions.front(), 0.0);
  EXPECT_NEAR(res.fractions.back(), 0.60, 1e-9);
}

TEST(JitterSweep, MissFractionMonotoneUnderFixedAssumptions) {
  JitterSweepConfig cfg;
  cfg.rta = worst_case_assumptions();
  const JitterSweepResult res = sweep_jitter(case_matrix(), cfg);
  // Deadline kMinReArrival shrinks with jitter while responses grow, so
  // the miss fraction is monotone non-decreasing along the sweep.
  for (std::size_t i = 1; i < res.results.size(); ++i)
    EXPECT_GE(res.miss_fraction(i), res.miss_fraction(i - 1)) << "step " << i;
}

TEST(JitterSweep, ResponseCurvesMonotone) {
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  const KMatrix km = case_matrix();
  const JitterSweepResult res = sweep_jitter(km, cfg);
  for (const auto& m : km.messages()) {
    const auto curve = res.response_curve(m.name);
    for (std::size_t i = 1; i < curve.size(); ++i)
      EXPECT_GE(curve[i], curve[i - 1]) << m.name << " step " << i;
  }
}

TEST(JitterSweep, WorstAssumptionsDominateBest) {
  const KMatrix km = case_matrix();
  JitterSweepConfig best;
  best.rta = best_case_assumptions();
  JitterSweepConfig worst;
  worst.rta = worst_case_assumptions();
  const auto rb = sweep_jitter(km, best);
  const auto rw = sweep_jitter(km, worst);
  for (std::size_t i = 0; i < rb.results.size(); ++i)
    EXPECT_GE(rw.miss_fraction(i), rb.miss_fraction(i));
}

TEST(JitterSweep, RespectsKnownJitterFlag) {
  KMatrix km = case_matrix();
  JitterSweepConfig cfg;
  cfg.override_known = false;
  cfg.from = cfg.to = 0.30;
  cfg.step = 0.05;
  cfg.rta = best_case_assumptions();
  sweep_jitter(km, cfg);  // must not throw; known jitters preserved
  // Direct check of the underlying knob:
  KMatrix keep = km;
  assume_jitter_fraction(keep, 0.30, false);
  for (std::size_t i = 0; i < km.size(); ++i)
    if (km.messages()[i].jitter_known)
      EXPECT_EQ(keep.messages()[i].jitter, km.messages()[i].jitter);
}

TEST(JitterSweep, RejectsBadBounds) {
  JitterSweepConfig cfg;
  cfg.step = 0.0;
  EXPECT_THROW(sweep_jitter(case_matrix(), cfg), std::invalid_argument);
  cfg.step = 0.05;
  cfg.from = 0.5;
  cfg.to = 0.1;
  EXPECT_THROW(sweep_jitter(case_matrix(), cfg), std::invalid_argument);
}

TEST(JitterSweep, UnknownMessageCurveThrows) {
  JitterSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  const JitterSweepResult res = sweep_jitter(case_matrix(), cfg);
  EXPECT_THROW(res.response_curve("nope"), std::invalid_argument);
}

TEST(ErrorSweep, MoreFrequentErrorsNeverReduceMisses) {
  ErrorSweepConfig cfg;
  cfg.rta = best_case_assumptions();
  cfg.from = Duration::s(1);
  cfg.to = Duration::ms(2);
  cfg.points = 9;
  KMatrix km = case_matrix();
  assume_jitter_fraction(km, 0.2, true);
  const ErrorSweepResult res = sweep_errors(km, cfg);
  ASSERT_EQ(res.results.size(), 9u);
  for (std::size_t i = 1; i < res.results.size(); ++i) {
    EXPECT_LT(res.min_inter_error[i], res.min_inter_error[i - 1]);
    EXPECT_GE(res.results[i].miss_fraction(), res.results[i - 1].miss_fraction());
  }
}

TEST(ErrorSweep, RejectsBadConfig) {
  ErrorSweepConfig cfg;
  cfg.points = 1;
  EXPECT_THROW(sweep_errors(case_matrix(), cfg), std::invalid_argument);
  cfg.points = 5;
  cfg.from = Duration::ms(1);
  cfg.to = Duration::ms(10);
  EXPECT_THROW(sweep_errors(case_matrix(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace symcan

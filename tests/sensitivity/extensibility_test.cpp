#include "symcan/sensitivity/extensibility.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "symcan/analysis/presets.hpp"
#include "symcan/opt/assignment.hpp"
#include "symcan/workload/powertrain.hpp"

namespace symcan {
namespace {

KMatrix half_loaded() {
  PowertrainConfig cfg = PowertrainConfig::case_study();
  cfg.message_count = 24;
  cfg.ecu_count = 4;
  cfg.target_utilization = 0.35;
  return generate_powertrain(cfg);
}

ExtensionProfile default_profile() {
  ExtensionProfile p;
  p.first_id = 0x500;
  p.period = Duration::ms(20);
  return p;
}

TEST(Extensibility, FindsPositiveHeadroomOnHalfLoadedBus) {
  const KMatrix km = half_loaded();
  const ExtensibilityReport r =
      max_additional_messages(km, best_case_assumptions(), default_profile(), 64);
  EXPECT_GT(r.max_additional_messages, 0u);
  EXPECT_GT(r.utilization_at_max, km.utilization(true));
}

TEST(Extensibility, BoundaryIsExact) {
  const KMatrix km = half_loaded();
  const CanRtaConfig rta = best_case_assumptions();
  const ExtensionProfile p = default_profile();
  const ExtensibilityReport r = max_additional_messages(km, rta, p, 200);
  if (r.capped) GTEST_SKIP() << "cap reached; boundary outside range";
  // The trace ends with the first failing step, one past the maximum.
  ASSERT_EQ(r.steps.size(), r.max_additional_messages + 1);
  EXPECT_TRUE(r.steps[r.max_additional_messages - 1].schedulable);
  EXPECT_FALSE(r.steps.back().schedulable);
  EXPECT_FALSE(r.steps.back().first_miss.empty());
}

TEST(Extensibility, HarsherAssumptionsShrinkHeadroom) {
  const KMatrix km = half_loaded();
  const ExtensionProfile p = default_profile();
  const auto easy = max_additional_messages(km, best_case_assumptions(), p, 200);
  const auto hard = max_additional_messages(km, worst_case_assumptions(), p, 200);
  EXPECT_LE(hard.max_additional_messages, easy.max_additional_messages);
}

TEST(Extensibility, InsertionPositionDeterminesWhoBreaksFirst) {
  // Appending at the top of the ID space never disturbs existing traffic
  // (the first failure is an extension message starving); inserting at
  // the bottom steals priority, so the first failure is an existing
  // message. Which position admits more extensions depends on the slack
  // distribution — the structural claim is about the failure mode.
  const KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  ExtensionProfile append = default_profile();
  append.first_id = 0x600;
  ExtensionProfile steal = default_profile();
  steal.first_id = 0x01;
  const CanRtaConfig rta = best_case_assumptions();
  const auto r_append = max_additional_messages(km, rta, append, 64);
  const auto r_steal = max_additional_messages(km, rta, steal, 64);
  if (!r_append.capped && !r_append.steps.empty()) {
    EXPECT_EQ(r_append.steps.back().first_miss.rfind("ext_", 0), 0u)
        << r_append.steps.back().first_miss;
  }
  if (!r_steal.capped && !r_steal.steps.empty()) {
    EXPECT_NE(r_steal.steps.back().first_miss.rfind("ext_", 0), 0u)
        << r_steal.steps.back().first_miss;
  }
}

TEST(Extensibility, EcuVariantCountsEcus) {
  const KMatrix km = half_loaded();
  ExtensionProfile p = default_profile();
  const auto r = max_additional_ecus(km, best_case_assumptions(), p, 3, 16);
  // With 3 messages per ECU the ECU count is at most a third of the
  // message headroom (plus one for rounding).
  const auto msgs = max_additional_messages(km, best_case_assumptions(), p, 64);
  if (!msgs.capped) {
    EXPECT_LE(r.max_additional_messages, msgs.max_additional_messages / 3 + 1);
  }
  EXPECT_GT(r.max_additional_messages, 0u);
}

TEST(Extensibility, UtilizationGrowsAlongTheTrace) {
  const auto r = max_additional_messages(half_loaded(), best_case_assumptions(),
                                         default_profile(), 32);
  for (std::size_t i = 1; i < r.steps.size(); ++i)
    EXPECT_GT(r.steps[i].utilization, r.steps[i - 1].utilization);
}

TEST(Extensibility, RejectsBadProfiles) {
  const KMatrix km = half_loaded();
  ExtensionProfile p = default_profile();
  p.period = Duration::zero();
  EXPECT_THROW(max_additional_messages(km, best_case_assumptions(), p), std::invalid_argument);
  p = default_profile();
  p.jitter_fraction = -1;
  EXPECT_THROW(max_additional_messages(km, best_case_assumptions(), p), std::invalid_argument);
  p = default_profile();
  p.payload_bytes = 12;
  EXPECT_THROW(max_additional_messages(km, best_case_assumptions(), p), std::invalid_argument);
  p = default_profile();
  EXPECT_THROW(max_additional_ecus(km, best_case_assumptions(), p, 0), std::invalid_argument);
}

TEST(Extensibility, OptimizedMatrixHasAtLeastAsMuchHeadroom) {
  // Section 6: optimization buys extensibility — a deadline-monotonic
  // reassignment admits at least as many extension messages as the
  // historically grown original under the same assumptions.
  KMatrix km = generate_powertrain(PowertrainConfig::case_study());
  assume_jitter_fraction(km, 0.10, true);
  ExtensionProfile p = default_profile();
  p.first_id = 0x600;
  const CanRtaConfig rta = worst_case_assumptions();

  const KMatrix dm = apply_priority_order(km, deadline_monotonic_order(km));
  const auto original = max_additional_messages(km, rta, p, 48);
  const auto optimized = max_additional_messages(dm, rta, p, 48);
  EXPECT_GE(optimized.max_additional_messages, original.max_additional_messages);
}

}  // namespace
}  // namespace symcan

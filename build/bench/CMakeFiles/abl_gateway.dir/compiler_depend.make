# Empty compiler generated dependencies file for abl_gateway.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_vehicle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_vehicle.dir/abl_vehicle.cpp.o"
  "CMakeFiles/abl_vehicle.dir/abl_vehicle.cpp.o.d"
  "abl_vehicle"
  "abl_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig1_load.
# This may be replaced when dependencies are built.

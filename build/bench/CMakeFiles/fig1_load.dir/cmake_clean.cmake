file(REMOVE_RECURSE
  "CMakeFiles/fig1_load.dir/fig1_load.cpp.o"
  "CMakeFiles/fig1_load.dir/fig1_load.cpp.o.d"
  "fig1_load"
  "fig1_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

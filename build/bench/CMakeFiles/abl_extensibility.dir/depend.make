# Empty dependencies file for abl_extensibility.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_extensibility.dir/abl_extensibility.cpp.o"
  "CMakeFiles/abl_extensibility.dir/abl_extensibility.cpp.o.d"
  "abl_extensibility"
  "abl_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/abl_controller.dir/abl_controller.cpp.o"
  "CMakeFiles/abl_controller.dir/abl_controller.cpp.o.d"
  "abl_controller"
  "abl_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for abl_controller.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig4_sensitivity.dir/fig4_sensitivity.cpp.o"
  "CMakeFiles/fig4_sensitivity.dir/fig4_sensitivity.cpp.o.d"
  "fig4_sensitivity"
  "fig4_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig4_sensitivity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for abl_flashing.
# This may be replaced when dependencies are built.

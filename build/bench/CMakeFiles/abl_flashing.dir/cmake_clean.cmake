file(REMOVE_RECURSE
  "CMakeFiles/abl_flashing.dir/abl_flashing.cpp.o"
  "CMakeFiles/abl_flashing.dir/abl_flashing.cpp.o.d"
  "abl_flashing"
  "abl_flashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_flashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

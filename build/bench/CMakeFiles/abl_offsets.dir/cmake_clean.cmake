file(REMOVE_RECURSE
  "CMakeFiles/abl_offsets.dir/abl_offsets.cpp.o"
  "CMakeFiles/abl_offsets.dir/abl_offsets.cpp.o.d"
  "abl_offsets"
  "abl_offsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_offsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

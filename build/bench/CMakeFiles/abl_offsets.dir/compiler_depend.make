# Empty compiler generated dependencies file for abl_offsets.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_optimizers.dir/abl_optimizers.cpp.o"
  "CMakeFiles/abl_optimizers.dir/abl_optimizers.cpp.o.d"
  "abl_optimizers"
  "abl_optimizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_optimizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

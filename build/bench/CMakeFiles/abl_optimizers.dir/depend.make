# Empty dependencies file for abl_optimizers.
# This may be replaced when dependencies are built.

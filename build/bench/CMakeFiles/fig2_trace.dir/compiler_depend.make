# Empty compiler generated dependencies file for fig2_trace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_ecu.dir/abl_ecu.cpp.o"
  "CMakeFiles/abl_ecu.dir/abl_ecu.cpp.o.d"
  "abl_ecu"
  "abl_ecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

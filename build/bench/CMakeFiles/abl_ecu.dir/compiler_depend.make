# Empty compiler generated dependencies file for abl_ecu.
# This may be replaced when dependencies are built.

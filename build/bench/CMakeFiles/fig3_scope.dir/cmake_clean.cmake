file(REMOVE_RECURSE
  "CMakeFiles/fig3_scope.dir/fig3_scope.cpp.o"
  "CMakeFiles/fig3_scope.dir/fig3_scope.cpp.o.d"
  "fig3_scope"
  "fig3_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_scope.
# This may be replaced when dependencies are built.

# Empty dependencies file for abl_risk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/abl_risk.dir/abl_risk.cpp.o"
  "CMakeFiles/abl_risk.dir/abl_risk.cpp.o.d"
  "abl_risk"
  "abl_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

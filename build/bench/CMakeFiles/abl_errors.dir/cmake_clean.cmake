file(REMOVE_RECURSE
  "CMakeFiles/abl_errors.dir/abl_errors.cpp.o"
  "CMakeFiles/abl_errors.dir/abl_errors.cpp.o.d"
  "abl_errors"
  "abl_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

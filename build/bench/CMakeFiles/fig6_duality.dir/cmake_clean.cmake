file(REMOVE_RECURSE
  "CMakeFiles/fig6_duality.dir/fig6_duality.cpp.o"
  "CMakeFiles/fig6_duality.dir/fig6_duality.cpp.o.d"
  "fig6_duality"
  "fig6_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

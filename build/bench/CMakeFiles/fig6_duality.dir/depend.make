# Empty dependencies file for fig6_duality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_loss.dir/fig5_loss.cpp.o"
  "CMakeFiles/fig5_loss.dir/fig5_loss.cpp.o.d"
  "fig5_loss"
  "fig5_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

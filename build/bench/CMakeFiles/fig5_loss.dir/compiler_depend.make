# Empty compiler generated dependencies file for fig5_loss.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/symcan_tool.dir/symcan_main.cpp.o"
  "CMakeFiles/symcan_tool.dir/symcan_main.cpp.o.d"
  "symcan"
  "symcan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

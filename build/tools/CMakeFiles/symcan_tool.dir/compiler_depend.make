# Empty compiler generated dependencies file for symcan_tool.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_vehicle_integration.dir/vehicle_integration.cpp.o"
  "CMakeFiles/example_vehicle_integration.dir/vehicle_integration.cpp.o.d"
  "vehicle_integration"
  "vehicle_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vehicle_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

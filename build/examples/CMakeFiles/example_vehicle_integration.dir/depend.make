# Empty dependencies file for example_vehicle_integration.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_powertrain_whatif.
# This may be replaced when dependencies are built.

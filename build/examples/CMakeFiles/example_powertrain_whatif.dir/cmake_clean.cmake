file(REMOVE_RECURSE
  "CMakeFiles/example_powertrain_whatif.dir/powertrain_whatif.cpp.o"
  "CMakeFiles/example_powertrain_whatif.dir/powertrain_whatif.cpp.o.d"
  "powertrain_whatif"
  "powertrain_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_powertrain_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

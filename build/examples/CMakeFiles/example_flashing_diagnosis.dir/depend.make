# Empty dependencies file for example_flashing_diagnosis.
# This may be replaced when dependencies are built.

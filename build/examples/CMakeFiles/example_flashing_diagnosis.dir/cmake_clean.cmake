file(REMOVE_RECURSE
  "CMakeFiles/example_flashing_diagnosis.dir/flashing_diagnosis.cpp.o"
  "CMakeFiles/example_flashing_diagnosis.dir/flashing_diagnosis.cpp.o.d"
  "flashing_diagnosis"
  "flashing_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flashing_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

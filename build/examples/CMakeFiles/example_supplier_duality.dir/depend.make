# Empty dependencies file for example_supplier_duality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_supplier_duality.dir/supplier_duality.cpp.o"
  "CMakeFiles/example_supplier_duality.dir/supplier_duality.cpp.o.d"
  "supplier_duality"
  "supplier_duality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_supplier_duality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

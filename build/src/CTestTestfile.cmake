# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("symcan/util")
subdirs("symcan/model")
subdirs("symcan/can")
subdirs("symcan/analysis")
subdirs("symcan/core")
subdirs("symcan/sim")
subdirs("symcan/sensitivity")
subdirs("symcan/opt")
subdirs("symcan/supplychain")
subdirs("symcan/workload")
subdirs("symcan/cli")

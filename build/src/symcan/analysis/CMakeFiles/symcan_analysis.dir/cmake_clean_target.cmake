file(REMOVE_RECURSE
  "libsymcan_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_analysis.dir/buffer.cpp.o"
  "CMakeFiles/symcan_analysis.dir/buffer.cpp.o.d"
  "CMakeFiles/symcan_analysis.dir/can_rta.cpp.o"
  "CMakeFiles/symcan_analysis.dir/can_rta.cpp.o.d"
  "CMakeFiles/symcan_analysis.dir/ecu_rta.cpp.o"
  "CMakeFiles/symcan_analysis.dir/ecu_rta.cpp.o.d"
  "CMakeFiles/symcan_analysis.dir/error_model.cpp.o"
  "CMakeFiles/symcan_analysis.dir/error_model.cpp.o.d"
  "CMakeFiles/symcan_analysis.dir/load.cpp.o"
  "CMakeFiles/symcan_analysis.dir/load.cpp.o.d"
  "CMakeFiles/symcan_analysis.dir/tt_schedule.cpp.o"
  "CMakeFiles/symcan_analysis.dir/tt_schedule.cpp.o.d"
  "libsymcan_analysis.a"
  "libsymcan_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symcan/analysis/buffer.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/buffer.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/buffer.cpp.o.d"
  "/root/repo/src/symcan/analysis/can_rta.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/can_rta.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/can_rta.cpp.o.d"
  "/root/repo/src/symcan/analysis/ecu_rta.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/ecu_rta.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/ecu_rta.cpp.o.d"
  "/root/repo/src/symcan/analysis/error_model.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/error_model.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/error_model.cpp.o.d"
  "/root/repo/src/symcan/analysis/load.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/load.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/load.cpp.o.d"
  "/root/repo/src/symcan/analysis/tt_schedule.cpp" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/tt_schedule.cpp.o" "gcc" "src/symcan/analysis/CMakeFiles/symcan_analysis.dir/tt_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symcan/can/CMakeFiles/symcan_can.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/model/CMakeFiles/symcan_model.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/util/CMakeFiles/symcan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for symcan_analysis.
# This may be replaced when dependencies are built.

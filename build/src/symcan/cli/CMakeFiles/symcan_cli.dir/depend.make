# Empty dependencies file for symcan_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsymcan_cli.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_cli.dir/args.cpp.o"
  "CMakeFiles/symcan_cli.dir/args.cpp.o.d"
  "CMakeFiles/symcan_cli.dir/commands.cpp.o"
  "CMakeFiles/symcan_cli.dir/commands.cpp.o.d"
  "libsymcan_cli.a"
  "libsymcan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

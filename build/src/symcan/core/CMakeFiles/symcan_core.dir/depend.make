# Empty dependencies file for symcan_core.
# This may be replaced when dependencies are built.

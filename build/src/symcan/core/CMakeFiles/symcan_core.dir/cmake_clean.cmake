file(REMOVE_RECURSE
  "CMakeFiles/symcan_core.dir/engine.cpp.o"
  "CMakeFiles/symcan_core.dir/engine.cpp.o.d"
  "CMakeFiles/symcan_core.dir/gateway.cpp.o"
  "CMakeFiles/symcan_core.dir/gateway.cpp.o.d"
  "CMakeFiles/symcan_core.dir/system.cpp.o"
  "CMakeFiles/symcan_core.dir/system.cpp.o.d"
  "libsymcan_core.a"
  "libsymcan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

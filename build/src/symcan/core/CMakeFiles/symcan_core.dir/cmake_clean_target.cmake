file(REMOVE_RECURSE
  "libsymcan_core.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symcan/can/controller.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/controller.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/controller.cpp.o.d"
  "/root/repo/src/symcan/can/dbc_import.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/dbc_import.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/dbc_import.cpp.o.d"
  "/root/repo/src/symcan/can/frame.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/frame.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/frame.cpp.o.d"
  "/root/repo/src/symcan/can/kmatrix.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/kmatrix.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/kmatrix.cpp.o.d"
  "/root/repo/src/symcan/can/kmatrix_io.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/kmatrix_io.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/kmatrix_io.cpp.o.d"
  "/root/repo/src/symcan/can/message.cpp" "src/symcan/can/CMakeFiles/symcan_can.dir/message.cpp.o" "gcc" "src/symcan/can/CMakeFiles/symcan_can.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symcan/model/CMakeFiles/symcan_model.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/util/CMakeFiles/symcan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for symcan_can.
# This may be replaced when dependencies are built.

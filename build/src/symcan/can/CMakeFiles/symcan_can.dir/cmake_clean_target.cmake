file(REMOVE_RECURSE
  "libsymcan_can.a"
)

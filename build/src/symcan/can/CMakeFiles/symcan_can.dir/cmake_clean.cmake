file(REMOVE_RECURSE
  "CMakeFiles/symcan_can.dir/controller.cpp.o"
  "CMakeFiles/symcan_can.dir/controller.cpp.o.d"
  "CMakeFiles/symcan_can.dir/dbc_import.cpp.o"
  "CMakeFiles/symcan_can.dir/dbc_import.cpp.o.d"
  "CMakeFiles/symcan_can.dir/frame.cpp.o"
  "CMakeFiles/symcan_can.dir/frame.cpp.o.d"
  "CMakeFiles/symcan_can.dir/kmatrix.cpp.o"
  "CMakeFiles/symcan_can.dir/kmatrix.cpp.o.d"
  "CMakeFiles/symcan_can.dir/kmatrix_io.cpp.o"
  "CMakeFiles/symcan_can.dir/kmatrix_io.cpp.o.d"
  "CMakeFiles/symcan_can.dir/message.cpp.o"
  "CMakeFiles/symcan_can.dir/message.cpp.o.d"
  "libsymcan_can.a"
  "libsymcan_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

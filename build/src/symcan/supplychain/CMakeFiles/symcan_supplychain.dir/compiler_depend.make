# Empty compiler generated dependencies file for symcan_supplychain.
# This may be replaced when dependencies are built.

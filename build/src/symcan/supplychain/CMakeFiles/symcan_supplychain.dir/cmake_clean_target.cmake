file(REMOVE_RECURSE
  "libsymcan_supplychain.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_supplychain.dir/budget.cpp.o"
  "CMakeFiles/symcan_supplychain.dir/budget.cpp.o.d"
  "CMakeFiles/symcan_supplychain.dir/datasheet.cpp.o"
  "CMakeFiles/symcan_supplychain.dir/datasheet.cpp.o.d"
  "CMakeFiles/symcan_supplychain.dir/refinement.cpp.o"
  "CMakeFiles/symcan_supplychain.dir/refinement.cpp.o.d"
  "CMakeFiles/symcan_supplychain.dir/risk.cpp.o"
  "CMakeFiles/symcan_supplychain.dir/risk.cpp.o.d"
  "libsymcan_supplychain.a"
  "libsymcan_supplychain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_supplychain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

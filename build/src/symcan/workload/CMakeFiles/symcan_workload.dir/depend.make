# Empty dependencies file for symcan_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libsymcan_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_workload.dir/powertrain.cpp.o"
  "CMakeFiles/symcan_workload.dir/powertrain.cpp.o.d"
  "CMakeFiles/symcan_workload.dir/scenario.cpp.o"
  "CMakeFiles/symcan_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/symcan_workload.dir/vehicle.cpp.o"
  "CMakeFiles/symcan_workload.dir/vehicle.cpp.o.d"
  "libsymcan_workload.a"
  "libsymcan_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

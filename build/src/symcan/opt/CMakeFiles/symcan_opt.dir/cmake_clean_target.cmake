file(REMOVE_RECURSE
  "libsymcan_opt.a"
)

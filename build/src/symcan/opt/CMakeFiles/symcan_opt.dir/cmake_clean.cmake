file(REMOVE_RECURSE
  "CMakeFiles/symcan_opt.dir/assignment.cpp.o"
  "CMakeFiles/symcan_opt.dir/assignment.cpp.o.d"
  "CMakeFiles/symcan_opt.dir/ga.cpp.o"
  "CMakeFiles/symcan_opt.dir/ga.cpp.o.d"
  "CMakeFiles/symcan_opt.dir/nsga2.cpp.o"
  "CMakeFiles/symcan_opt.dir/nsga2.cpp.o.d"
  "libsymcan_opt.a"
  "libsymcan_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for symcan_opt.
# This may be replaced when dependencies are built.

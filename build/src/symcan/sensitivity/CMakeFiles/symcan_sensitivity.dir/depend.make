# Empty dependencies file for symcan_sensitivity.
# This may be replaced when dependencies are built.

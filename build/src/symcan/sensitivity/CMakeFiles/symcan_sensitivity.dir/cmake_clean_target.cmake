file(REMOVE_RECURSE
  "libsymcan_sensitivity.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_sensitivity.dir/extensibility.cpp.o"
  "CMakeFiles/symcan_sensitivity.dir/extensibility.cpp.o.d"
  "CMakeFiles/symcan_sensitivity.dir/robustness.cpp.o"
  "CMakeFiles/symcan_sensitivity.dir/robustness.cpp.o.d"
  "CMakeFiles/symcan_sensitivity.dir/sweep.cpp.o"
  "CMakeFiles/symcan_sensitivity.dir/sweep.cpp.o.d"
  "libsymcan_sensitivity.a"
  "libsymcan_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

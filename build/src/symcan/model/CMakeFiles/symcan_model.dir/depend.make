# Empty dependencies file for symcan_model.
# This may be replaced when dependencies are built.

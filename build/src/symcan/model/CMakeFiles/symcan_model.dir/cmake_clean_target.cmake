file(REMOVE_RECURSE
  "libsymcan_model.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/symcan_model.dir/converters.cpp.o"
  "CMakeFiles/symcan_model.dir/converters.cpp.o.d"
  "CMakeFiles/symcan_model.dir/event_model.cpp.o"
  "CMakeFiles/symcan_model.dir/event_model.cpp.o.d"
  "CMakeFiles/symcan_model.dir/task.cpp.o"
  "CMakeFiles/symcan_model.dir/task.cpp.o.d"
  "libsymcan_model.a"
  "libsymcan_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symcan/model/converters.cpp" "src/symcan/model/CMakeFiles/symcan_model.dir/converters.cpp.o" "gcc" "src/symcan/model/CMakeFiles/symcan_model.dir/converters.cpp.o.d"
  "/root/repo/src/symcan/model/event_model.cpp" "src/symcan/model/CMakeFiles/symcan_model.dir/event_model.cpp.o" "gcc" "src/symcan/model/CMakeFiles/symcan_model.dir/event_model.cpp.o.d"
  "/root/repo/src/symcan/model/task.cpp" "src/symcan/model/CMakeFiles/symcan_model.dir/task.cpp.o" "gcc" "src/symcan/model/CMakeFiles/symcan_model.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symcan/util/CMakeFiles/symcan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/symcan_util.dir/csv.cpp.o"
  "CMakeFiles/symcan_util.dir/csv.cpp.o.d"
  "CMakeFiles/symcan_util.dir/table.cpp.o"
  "CMakeFiles/symcan_util.dir/table.cpp.o.d"
  "CMakeFiles/symcan_util.dir/time.cpp.o"
  "CMakeFiles/symcan_util.dir/time.cpp.o.d"
  "libsymcan_util.a"
  "libsymcan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

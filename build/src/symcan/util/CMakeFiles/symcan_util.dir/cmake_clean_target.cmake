file(REMOVE_RECURSE
  "libsymcan_util.a"
)

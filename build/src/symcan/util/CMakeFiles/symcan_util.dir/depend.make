# Empty dependencies file for symcan_util.
# This may be replaced when dependencies are built.

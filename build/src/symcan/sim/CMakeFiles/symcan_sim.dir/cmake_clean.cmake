file(REMOVE_RECURSE
  "CMakeFiles/symcan_sim.dir/ecu_simulator.cpp.o"
  "CMakeFiles/symcan_sim.dir/ecu_simulator.cpp.o.d"
  "CMakeFiles/symcan_sim.dir/simulator.cpp.o"
  "CMakeFiles/symcan_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/symcan_sim.dir/trace.cpp.o"
  "CMakeFiles/symcan_sim.dir/trace.cpp.o.d"
  "libsymcan_sim.a"
  "libsymcan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symcan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symcan/sim/ecu_simulator.cpp" "src/symcan/sim/CMakeFiles/symcan_sim.dir/ecu_simulator.cpp.o" "gcc" "src/symcan/sim/CMakeFiles/symcan_sim.dir/ecu_simulator.cpp.o.d"
  "/root/repo/src/symcan/sim/simulator.cpp" "src/symcan/sim/CMakeFiles/symcan_sim.dir/simulator.cpp.o" "gcc" "src/symcan/sim/CMakeFiles/symcan_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/symcan/sim/trace.cpp" "src/symcan/sim/CMakeFiles/symcan_sim.dir/trace.cpp.o" "gcc" "src/symcan/sim/CMakeFiles/symcan_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symcan/can/CMakeFiles/symcan_can.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/model/CMakeFiles/symcan_model.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/util/CMakeFiles/symcan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

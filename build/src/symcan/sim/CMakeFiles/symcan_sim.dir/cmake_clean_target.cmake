file(REMOVE_RECURSE
  "libsymcan_sim.a"
)

# Empty compiler generated dependencies file for symcan_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_gateway_test.dir/core/gateway_test.cpp.o"
  "CMakeFiles/core_gateway_test.dir/core/gateway_test.cpp.o.d"
  "core_gateway_test"
  "core_gateway_test.pdb"
  "core_gateway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

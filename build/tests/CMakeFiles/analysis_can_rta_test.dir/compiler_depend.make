# Empty compiler generated dependencies file for analysis_can_rta_test.
# This may be replaced when dependencies are built.

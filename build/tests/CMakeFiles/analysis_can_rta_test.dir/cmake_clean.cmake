file(REMOVE_RECURSE
  "CMakeFiles/analysis_can_rta_test.dir/analysis/can_rta_test.cpp.o"
  "CMakeFiles/analysis_can_rta_test.dir/analysis/can_rta_test.cpp.o.d"
  "analysis_can_rta_test"
  "analysis_can_rta_test.pdb"
  "analysis_can_rta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_can_rta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

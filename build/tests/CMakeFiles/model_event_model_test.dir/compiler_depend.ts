# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for model_event_model_test.

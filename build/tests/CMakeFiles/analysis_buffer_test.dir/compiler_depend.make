# Empty compiler generated dependencies file for analysis_buffer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analysis_buffer_test.dir/analysis/buffer_test.cpp.o"
  "CMakeFiles/analysis_buffer_test.dir/analysis/buffer_test.cpp.o.d"
  "analysis_buffer_test"
  "analysis_buffer_test.pdb"
  "analysis_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sensitivity_sweep_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_sweep_test.dir/sensitivity/sweep_test.cpp.o"
  "CMakeFiles/sensitivity_sweep_test.dir/sensitivity/sweep_test.cpp.o.d"
  "sensitivity_sweep_test"
  "sensitivity_sweep_test.pdb"
  "sensitivity_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/opt_nsga2_test.dir/opt/nsga2_test.cpp.o"
  "CMakeFiles/opt_nsga2_test.dir/opt/nsga2_test.cpp.o.d"
  "opt_nsga2_test"
  "opt_nsga2_test.pdb"
  "opt_nsga2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_nsga2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for opt_nsga2_test.
# This may be replaced when dependencies are built.

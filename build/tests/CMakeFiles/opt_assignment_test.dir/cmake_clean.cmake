file(REMOVE_RECURSE
  "CMakeFiles/opt_assignment_test.dir/opt/assignment_test.cpp.o"
  "CMakeFiles/opt_assignment_test.dir/opt/assignment_test.cpp.o.d"
  "opt_assignment_test"
  "opt_assignment_test.pdb"
  "opt_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

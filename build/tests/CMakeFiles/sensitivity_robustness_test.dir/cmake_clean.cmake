file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_robustness_test.dir/sensitivity/robustness_test.cpp.o"
  "CMakeFiles/sensitivity_robustness_test.dir/sensitivity/robustness_test.cpp.o.d"
  "sensitivity_robustness_test"
  "sensitivity_robustness_test.pdb"
  "sensitivity_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

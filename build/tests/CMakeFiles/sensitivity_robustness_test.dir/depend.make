# Empty dependencies file for sensitivity_robustness_test.
# This may be replaced when dependencies are built.

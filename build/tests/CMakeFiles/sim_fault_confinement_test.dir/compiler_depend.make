# Empty compiler generated dependencies file for sim_fault_confinement_test.
# This may be replaced when dependencies are built.

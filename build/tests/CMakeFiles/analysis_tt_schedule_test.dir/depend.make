# Empty dependencies file for analysis_tt_schedule_test.
# This may be replaced when dependencies are built.

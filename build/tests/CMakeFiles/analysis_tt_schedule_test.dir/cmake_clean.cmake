file(REMOVE_RECURSE
  "CMakeFiles/analysis_tt_schedule_test.dir/analysis/tt_schedule_test.cpp.o"
  "CMakeFiles/analysis_tt_schedule_test.dir/analysis/tt_schedule_test.cpp.o.d"
  "analysis_tt_schedule_test"
  "analysis_tt_schedule_test.pdb"
  "analysis_tt_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tt_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for supplychain_risk_test.
# This may be replaced when dependencies are built.

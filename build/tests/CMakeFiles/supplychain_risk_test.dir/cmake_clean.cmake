file(REMOVE_RECURSE
  "CMakeFiles/supplychain_risk_test.dir/supplychain/risk_test.cpp.o"
  "CMakeFiles/supplychain_risk_test.dir/supplychain/risk_test.cpp.o.d"
  "supplychain_risk_test"
  "supplychain_risk_test.pdb"
  "supplychain_risk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain_risk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

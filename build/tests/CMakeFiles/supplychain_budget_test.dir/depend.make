# Empty dependencies file for supplychain_budget_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/supplychain_budget_test.dir/supplychain/budget_test.cpp.o"
  "CMakeFiles/supplychain_budget_test.dir/supplychain/budget_test.cpp.o.d"
  "supplychain_budget_test"
  "supplychain_budget_test.pdb"
  "supplychain_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/model_task_test.dir/model/task_test.cpp.o"
  "CMakeFiles/model_task_test.dir/model/task_test.cpp.o.d"
  "model_task_test"
  "model_task_test.pdb"
  "model_task_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_task_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

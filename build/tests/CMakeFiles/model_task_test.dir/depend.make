# Empty dependencies file for model_task_test.
# This may be replaced when dependencies are built.

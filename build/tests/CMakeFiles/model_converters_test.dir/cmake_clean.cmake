file(REMOVE_RECURSE
  "CMakeFiles/model_converters_test.dir/model/converters_test.cpp.o"
  "CMakeFiles/model_converters_test.dir/model/converters_test.cpp.o.d"
  "model_converters_test"
  "model_converters_test.pdb"
  "model_converters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_converters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

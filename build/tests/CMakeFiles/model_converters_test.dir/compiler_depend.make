# Empty compiler generated dependencies file for model_converters_test.
# This may be replaced when dependencies are built.

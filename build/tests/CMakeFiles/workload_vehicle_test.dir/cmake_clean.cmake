file(REMOVE_RECURSE
  "CMakeFiles/workload_vehicle_test.dir/workload/vehicle_test.cpp.o"
  "CMakeFiles/workload_vehicle_test.dir/workload/vehicle_test.cpp.o.d"
  "workload_vehicle_test"
  "workload_vehicle_test.pdb"
  "workload_vehicle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_vehicle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workload_vehicle_test.
# This may be replaced when dependencies are built.

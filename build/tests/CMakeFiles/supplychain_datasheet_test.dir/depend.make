# Empty dependencies file for supplychain_datasheet_test.
# This may be replaced when dependencies are built.

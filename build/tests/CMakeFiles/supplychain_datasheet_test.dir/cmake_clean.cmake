file(REMOVE_RECURSE
  "CMakeFiles/supplychain_datasheet_test.dir/supplychain/datasheet_test.cpp.o"
  "CMakeFiles/supplychain_datasheet_test.dir/supplychain/datasheet_test.cpp.o.d"
  "supplychain_datasheet_test"
  "supplychain_datasheet_test.pdb"
  "supplychain_datasheet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain_datasheet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/can_frame_test.dir/can/frame_test.cpp.o"
  "CMakeFiles/can_frame_test.dir/can/frame_test.cpp.o.d"
  "can_frame_test"
  "can_frame_test.pdb"
  "can_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/can_dbc_import_test.dir/can/dbc_import_test.cpp.o"
  "CMakeFiles/can_dbc_import_test.dir/can/dbc_import_test.cpp.o.d"
  "can_dbc_import_test"
  "can_dbc_import_test.pdb"
  "can_dbc_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_dbc_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for can_dbc_import_test.
# This may be replaced when dependencies are built.

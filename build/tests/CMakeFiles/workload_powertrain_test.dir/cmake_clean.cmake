file(REMOVE_RECURSE
  "CMakeFiles/workload_powertrain_test.dir/workload/powertrain_test.cpp.o"
  "CMakeFiles/workload_powertrain_test.dir/workload/powertrain_test.cpp.o.d"
  "workload_powertrain_test"
  "workload_powertrain_test.pdb"
  "workload_powertrain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_powertrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for workload_powertrain_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/analysis_error_model_test.dir/analysis/error_model_test.cpp.o"
  "CMakeFiles/analysis_error_model_test.dir/analysis/error_model_test.cpp.o.d"
  "analysis_error_model_test"
  "analysis_error_model_test.pdb"
  "analysis_error_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_error_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for analysis_error_model_test.

# Empty compiler generated dependencies file for can_kmatrix_io_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sensitivity_extensibility_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_extensibility_test.dir/sensitivity/extensibility_test.cpp.o"
  "CMakeFiles/sensitivity_extensibility_test.dir/sensitivity/extensibility_test.cpp.o.d"
  "sensitivity_extensibility_test"
  "sensitivity_extensibility_test.pdb"
  "sensitivity_extensibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_extensibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

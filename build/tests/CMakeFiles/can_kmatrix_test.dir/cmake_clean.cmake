file(REMOVE_RECURSE
  "CMakeFiles/can_kmatrix_test.dir/can/kmatrix_test.cpp.o"
  "CMakeFiles/can_kmatrix_test.dir/can/kmatrix_test.cpp.o.d"
  "can_kmatrix_test"
  "can_kmatrix_test.pdb"
  "can_kmatrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_kmatrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

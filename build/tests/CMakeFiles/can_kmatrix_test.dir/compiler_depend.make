# Empty compiler generated dependencies file for can_kmatrix_test.
# This may be replaced when dependencies are built.

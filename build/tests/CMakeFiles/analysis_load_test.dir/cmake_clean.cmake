file(REMOVE_RECURSE
  "CMakeFiles/analysis_load_test.dir/analysis/load_test.cpp.o"
  "CMakeFiles/analysis_load_test.dir/analysis/load_test.cpp.o.d"
  "analysis_load_test"
  "analysis_load_test.pdb"
  "analysis_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

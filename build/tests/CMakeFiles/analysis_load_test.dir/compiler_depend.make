# Empty compiler generated dependencies file for analysis_load_test.
# This may be replaced when dependencies are built.

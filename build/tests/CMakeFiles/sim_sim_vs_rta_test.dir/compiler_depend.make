# Empty compiler generated dependencies file for sim_sim_vs_rta_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for opt_ga_test.
# This may be replaced when dependencies are built.

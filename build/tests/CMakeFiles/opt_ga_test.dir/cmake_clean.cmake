file(REMOVE_RECURSE
  "CMakeFiles/opt_ga_test.dir/opt/ga_test.cpp.o"
  "CMakeFiles/opt_ga_test.dir/opt/ga_test.cpp.o.d"
  "opt_ga_test"
  "opt_ga_test.pdb"
  "opt_ga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_ga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

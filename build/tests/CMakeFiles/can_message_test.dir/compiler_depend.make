# Empty compiler generated dependencies file for can_message_test.
# This may be replaced when dependencies are built.

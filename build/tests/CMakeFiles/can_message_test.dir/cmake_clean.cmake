file(REMOVE_RECURSE
  "CMakeFiles/can_message_test.dir/can/message_test.cpp.o"
  "CMakeFiles/can_message_test.dir/can/message_test.cpp.o.d"
  "can_message_test"
  "can_message_test.pdb"
  "can_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

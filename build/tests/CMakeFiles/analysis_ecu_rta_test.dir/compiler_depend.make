# Empty compiler generated dependencies file for analysis_ecu_rta_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/supplychain/refinement_test.cpp" "tests/CMakeFiles/supplychain_refinement_test.dir/supplychain/refinement_test.cpp.o" "gcc" "tests/CMakeFiles/supplychain_refinement_test.dir/supplychain/refinement_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/symcan/cli/CMakeFiles/symcan_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/sim/CMakeFiles/symcan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/sensitivity/CMakeFiles/symcan_sensitivity.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/opt/CMakeFiles/symcan_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/supplychain/CMakeFiles/symcan_supplychain.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/workload/CMakeFiles/symcan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/core/CMakeFiles/symcan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/analysis/CMakeFiles/symcan_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/can/CMakeFiles/symcan_can.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/model/CMakeFiles/symcan_model.dir/DependInfo.cmake"
  "/root/repo/build/src/symcan/util/CMakeFiles/symcan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

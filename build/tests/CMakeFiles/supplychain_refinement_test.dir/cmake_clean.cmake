file(REMOVE_RECURSE
  "CMakeFiles/supplychain_refinement_test.dir/supplychain/refinement_test.cpp.o"
  "CMakeFiles/supplychain_refinement_test.dir/supplychain/refinement_test.cpp.o.d"
  "supplychain_refinement_test"
  "supplychain_refinement_test.pdb"
  "supplychain_refinement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain_refinement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
